//! The six query-answering methods of Fig. 6: `UET`, `UAT` (the paper's
//! data structures) and `BSL1`–`BSL4`, behind one trait.

use std::time::{Duration, Instant};
use usi_baselines::{BaselineAnswer, Bsl1, Bsl2, Bsl3, Bsl4, QueryBaseline};
use usi_core::{TopKStrategy, UsiBuilder, UsiIndex};
use usi_strings::{GlobalUtility, WeightedString};
use usi_suffix::LceBackend;

/// The six methods compared in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `USI_TOP-K` built with Exact-Top-K.
    Uet,
    /// `USI_TOP-K` built with Approximate-Top-K (`s` rounds).
    Uat {
        /// Sampling rounds.
        s: usize,
    },
    /// No cache.
    Bsl1,
    /// LRU cache.
    Bsl2,
    /// Exact frequency cache.
    Bsl3,
    /// Sketched frequency cache.
    Bsl4,
}

impl Method {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Uet => "UET",
            Self::Uat { .. } => "UAT",
            Self::Bsl1 => "BSL1",
            Self::Bsl2 => "BSL2",
            Self::Bsl3 => "BSL3",
            Self::Bsl4 => "BSL4",
        }
    }

    /// The Fig. 6 lineup with the dataset's default `s` for UAT.
    pub fn lineup(s: usize) -> [Method; 6] {
        [Method::Uet, Method::Uat { s }, Method::Bsl1, Method::Bsl2, Method::Bsl3, Method::Bsl4]
    }
}

/// Adapter exposing [`UsiIndex`] through the baseline trait.
pub struct UsiAdapter {
    index: UsiIndex,
    label: &'static str,
}

impl QueryBaseline for UsiAdapter {
    fn name(&self) -> &'static str {
        self.label
    }

    fn query(&mut self, pattern: &[u8]) -> BaselineAnswer {
        let q = self.index.query(pattern);
        BaselineAnswer {
            value: q.value,
            occurrences: q.occurrences,
            cached: q.source == usi_core::QuerySource::HashTable,
        }
    }

    fn index_size(&self) -> usize {
        self.index.size_breakdown().total()
    }
}

/// A built method plus its construction time.
pub struct BuiltMethod {
    /// The query engine.
    pub engine: Box<dyn QueryBaseline>,
    /// Construction wall time.
    pub build_time: Duration,
}

/// Builds one method over `ws` with cache budget / top-K parameter `k`.
pub fn build_method(method: Method, ws: &WeightedString, k: usize, seed: u64) -> BuiltMethod {
    let u = GlobalUtility::sum_of_sums();
    let start = Instant::now();
    let engine: Box<dyn QueryBaseline> = match method {
        Method::Uet => Box::new(UsiAdapter {
            index: UsiBuilder::new().with_k(k).deterministic(seed).build(ws.clone()),
            label: "UET",
        }),
        Method::Uat { s } => Box::new(UsiAdapter {
            index: UsiBuilder::new()
                .with_k(k)
                .with_strategy(TopKStrategy::Approximate { rounds: s, lce: LceBackend::Naive })
                .deterministic(seed)
                .build(ws.clone()),
            label: "UAT",
        }),
        Method::Bsl1 => Box::new(Bsl1::new(ws.clone(), u, seed)),
        Method::Bsl2 => Box::new(Bsl2::new(ws.clone(), u, k, seed)),
        Method::Bsl3 => Box::new(Bsl3::new(ws.clone(), u, k, seed)),
        Method::Bsl4 => Box::new(Bsl4::new(ws.clone(), u, k, seed)),
    };
    BuiltMethod { engine, build_time: start.elapsed() }
}

/// Replays a workload, returning the average per-query latency.
pub fn replay(engine: &mut dyn QueryBaseline, queries: &[Vec<u8>]) -> Duration {
    let start = Instant::now();
    let mut sink = 0.0f64;
    for q in queries {
        let a = engine.query(q);
        sink += a.value.unwrap_or(0.0);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    elapsed / queries.len().max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_agree() {
        let ws = WeightedString::uniform(b"abcabcabd".repeat(40), 1.0);
        let mut engines: Vec<BuiltMethod> =
            Method::lineup(4).into_iter().map(|m| build_method(m, &ws, 8, 3)).collect();
        for pat in [&b"abc"[..], b"bca", b"abd", b"zzz", b"a"] {
            let answers: Vec<u64> =
                engines.iter_mut().map(|e| e.engine.query(pat).occurrences).collect();
            assert!(answers.windows(2).all(|w| w[0] == w[1]), "{pat:?}: {answers:?}");
        }
    }

    #[test]
    fn replay_returns_positive_latency() {
        let ws = WeightedString::uniform(b"xyxy".repeat(100), 1.0);
        let mut m = build_method(Method::Bsl1, &ws, 4, 5);
        let queries = vec![b"xy".to_vec(); 100];
        let avg = replay(m.engine.as_mut(), &queries);
        assert!(avg.as_nanos() > 0);
    }
}
