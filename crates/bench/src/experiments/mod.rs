//! The experiment registry: every table and figure of the paper maps to
//! one entry here (see DESIGN.md §4 for the index).

pub mod effectiveness;
pub mod example2;
pub mod methods;
pub mod mining_cost;
pub mod querying;
pub mod sec7;
pub mod tables;

use crate::context::ExperimentContext;
use crate::report::Report;

/// One runnable experiment.
pub struct Experiment {
    /// CLI id (`fig3-accuracy-k`, …).
    pub id: &'static str,
    /// Which paper artifact it regenerates.
    pub artifact: &'static str,
    /// Runner.
    pub run: fn(&ExperimentContext) -> Vec<Report>,
}

/// The catalogue, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            artifact: "Table I / Section II case study",
            run: tables::table1,
        },
        Experiment { id: "table2", artifact: "Table II dataset properties", run: tables::table2 },
        Experiment {
            id: "fig3-accuracy-k",
            artifact: "Fig. 3a-e accuracy vs K",
            run: effectiveness::accuracy_vs_k,
        },
        Experiment {
            id: "fig3-accuracy-n",
            artifact: "Fig. 3f-i accuracy vs n",
            run: effectiveness::accuracy_vs_n,
        },
        Experiment {
            id: "fig4-accuracy-s",
            artifact: "Fig. 3j, 4a-c accuracy vs s",
            run: effectiveness::accuracy_vs_s,
        },
        Experiment { id: "fig4-ndcg", artifact: "Fig. 4d NDCG", run: effectiveness::ndcg_all },
        Experiment {
            id: "fig4-ndcg-s",
            artifact: "Fig. 4e NDCG vs s",
            run: effectiveness::ndcg_vs_s,
        },
        Experiment {
            id: "fig5-space-n",
            artifact: "Fig. 5a,b miner space vs n",
            run: mining_cost::space_vs_n,
        },
        Experiment {
            id: "fig5-space-s",
            artifact: "Fig. 5c,d AT space vs s",
            run: mining_cost::space_vs_s,
        },
        Experiment {
            id: "fig5-time-k",
            artifact: "Fig. 5e,f miner runtime vs K",
            run: mining_cost::time_vs_k,
        },
        Experiment {
            id: "fig5-time-n",
            artifact: "Fig. 5g,h miner runtime vs n",
            run: mining_cost::time_vs_n,
        },
        Experiment {
            id: "fig5-time-s",
            artifact: "Fig. 5i,j AT runtime vs s",
            run: mining_cost::time_vs_s,
        },
        Experiment {
            id: "fig6-query-k",
            artifact: "Fig. 6a-e query time vs K (workload W1)",
            run: querying::query_vs_k,
        },
        Experiment {
            id: "fig6-query-p",
            artifact: "Fig. 6f-j query time vs p (workload W2,p)",
            run: querying::query_vs_p,
        },
        Experiment {
            id: "fig6-size-k",
            artifact: "Fig. 6k-m index size vs K",
            run: querying::size_vs_k,
        },
        Experiment {
            id: "fig6-size-n",
            artifact: "Fig. 6n-p index size vs n",
            run: querying::size_vs_n,
        },
        Experiment {
            id: "fig6-build-k",
            artifact: "Fig. 6q,r construction time vs K",
            run: querying::build_vs_k,
        },
        Experiment {
            id: "fig6-build-n",
            artifact: "Fig. 6s,t construction time vs n",
            run: querying::build_vs_n,
        },
        Experiment {
            id: "example2",
            artifact: "Example 2 frequent-pattern speedup",
            run: example2::run,
        },
        Experiment {
            id: "sec7-adversarial",
            artifact: "Section VII (AB)^{n/2} failure",
            run: sec7::run,
        },
    ]
}

/// Looks up experiments by id; `"all"` returns the whole catalogue.
pub fn select(id: &str) -> Vec<Experiment> {
    if id == "all" {
        return all();
    }
    all().into_iter().filter(|e| e.id == id).collect()
}
