//! Fig. 5: space and runtime of the four top-K substring miners.

use crate::context::{scaled_k_sweep, ExperimentContext};
use crate::miners::{run_miner, MinerKind};
use crate::report::{fmt_bytes, fmt_duration, Report};
use usi_datasets::Dataset;

/// The two datasets the paper plots in Fig. 5 (results for the others
/// are "analogous").
fn fig5_datasets() -> [Dataset; 2] {
    [Dataset::Xml, Dataset::Hum]
}

fn lineup(s: usize) -> [MinerKind; 4] {
    [MinerKind::Exact, MinerKind::Approximate { s }, MinerKind::TopKTrie, MinerKind::SubstringHk]
}

/// Fig. 5a,b: peak tracked space vs `n`.
pub fn space_vs_n(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig5-space-n",
        "Miner peak space vs n (Fig. 5a,b)",
        &["dataset", "n", "K", "ET", "AT", "TT", "SH"],
    );
    for ds in fig5_datasets() {
        let full = ctx.generate(ds);
        let s = ctx.default_s(ds);
        for n in ctx.n_sweep(ds) {
            let text = &full.text()[..n];
            let k = ctx.default_k(ds, n);
            let cells: Vec<String> = lineup(s)
                .iter()
                .map(|&kind| fmt_bytes(run_miner(kind, text, k, ctx.seed).peak_bytes))
                .collect();
            report.row(&[
                ds.spec().name.to_string(),
                n.to_string(),
                k.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                cells[3].clone(),
            ]);
        }
    }
    vec![report]
}

/// Fig. 5c,d: AT space vs `s`.
pub fn space_vs_s(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig5-space-s",
        "AT peak space vs s (Fig. 5c,d) — space shrinks as s grows",
        &["dataset", "n", "K", "s", "AT space"],
    );
    for ds in fig5_datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let k = ctx.default_k(ds, n);
        for s in ctx.s_sweep(ds) {
            let run = run_miner(MinerKind::Approximate { s }, ws.text(), k, ctx.seed);
            report.rowf(&[&ds.spec().name, &n, &k, &s, &fmt_bytes(run.peak_bytes)]);
        }
    }
    vec![report]
}

/// Fig. 5e,f: miner runtime vs `K`.
pub fn time_vs_k(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig5-time-k",
        "Miner runtime vs K (Fig. 5e,f)",
        &["dataset", "n", "K", "ET", "AT", "TT", "SH"],
    );
    for ds in fig5_datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let s = ctx.default_s(ds);
        for k in scaled_k_sweep(ctx, ds, n) {
            let cells: Vec<String> = lineup(s)
                .iter()
                .map(|&kind| fmt_duration(run_miner(kind, ws.text(), k, ctx.seed).runtime))
                .collect();
            report.row(&[
                ds.spec().name.to_string(),
                n.to_string(),
                k.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                cells[3].clone(),
            ]);
        }
    }
    vec![report]
}

/// Fig. 5g,h: miner runtime vs `n`.
pub fn time_vs_n(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig5-time-n",
        "Miner runtime vs n (Fig. 5g,h)",
        &["dataset", "n", "K", "ET", "AT", "TT", "SH"],
    );
    for ds in fig5_datasets() {
        let full = ctx.generate(ds);
        let s = ctx.default_s(ds);
        for n in ctx.n_sweep(ds) {
            let text = &full.text()[..n];
            let k = ctx.default_k(ds, n);
            let cells: Vec<String> = lineup(s)
                .iter()
                .map(|&kind| fmt_duration(run_miner(kind, text, k, ctx.seed).runtime))
                .collect();
            report.row(&[
                ds.spec().name.to_string(),
                n.to_string(),
                k.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                cells[3].clone(),
            ]);
        }
    }
    vec![report]
}

/// Fig. 5i,j: AT runtime vs `s`.
pub fn time_vs_s(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig5-time-s",
        "AT runtime vs s (Fig. 5i,j)",
        &["dataset", "n", "K", "s", "AT time"],
    );
    for ds in fig5_datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let k = ctx.default_k(ds, n);
        for s in ctx.s_sweep(ds) {
            let run = run_miner(MinerKind::Approximate { s }, ws.text(), k, ctx.seed);
            report.rowf(&[&ds.spec().name, &n, &k, &s, &fmt_duration(run.runtime)]);
        }
    }
    vec![report]
}
