//! Section VII: the `(AB)^{n/2}` adversarial instance on which the
//! item-stream adaptations lose (at least) half of the true top-K.

use crate::context::ExperimentContext;
use crate::miners::{run_miner, score_run, MinerKind};
use crate::report::Report;
use usi_core::oracle::exact_top_k;

/// Runs AT / TT / SH on `(AB)^{n/2}` and reports the paper's metrics.
pub fn run(ctx: &ExperimentContext) -> Vec<Report> {
    let half_n = ((8_192.0 * ctx.scale) as usize).max(64);
    let text = b"AB".repeat(half_n);
    let k = 16; // n/2 ≥ K > 4, K even, |Σ| = 2 — the Section VII premise
    let (exact, sa) = exact_top_k(&text, k);

    let mut report = Report::new(
        "sec7-adversarial",
        "Section VII: (AB)^{n/2}, K = 16 — SubstringHK and Top-K Trie lose ≥ half the output",
        &["miner", "reported", "exact-with-exact-freq", "accuracy %", "NDCG"],
    );
    for kind in [MinerKind::Approximate { s: 4 }, MinerKind::TopKTrie, MinerKind::SubstringHk] {
        let run = run_miner(kind, &text, k, ctx.seed);
        let score = score_run(&text, &sa, &exact, &run);
        let exact_hits = (score.accuracy * k as f64).round() as usize;
        report.rowf(&[
            &kind.label(),
            &run.reported.len(),
            &format!("{exact_hits}/{k}"),
            &format!("{:.1}", score.accuracy * 100.0),
            &format!("{:.4}", score.ndcg),
        ]);
    }
    vec![report]
}
