//! Example 2 (Section I): the frequent-pattern anecdote. A researcher
//! queries short DNA patterns drawn from the most frequent substrings;
//! the prefix-sums-over-suffix-array approach pays for every occurrence,
//! while `USI_TOP-K` answers from its hash table.

use crate::context::ExperimentContext;
use crate::experiments::methods::{build_method, replay, Method};
use crate::report::{fmt_bytes, fmt_duration, Report};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi_datasets::Dataset;
use usi_suffix::{suffix_array, SuffixArraySearcher};

/// Runs the Example-2 comparison on the DNA-like dataset.
pub fn run(ctx: &ExperimentContext) -> Vec<Report> {
    let ds = Dataset::Hum;
    let ws = ctx.generate(ds);
    let n = ws.len();
    // Pattern length scaled so each pattern has thousands of occurrences,
    // mirroring the paper's regime (length 8 on n = 2.9·10⁹ gave ≥ 104k
    // occurrences): pick m with 4^m ≈ n / 2000.
    let m = ((n as f64 / 2_000.0).log(4.0).ceil() as usize).clamp(3, 8);
    let num_patterns = 2_000.min(n / 10);

    // The paper draws patterns from the top-(n/50) frequent substrings;
    // here: rank all m-mers by frequency and sample from the top half.
    let sa = suffix_array(ws.text());
    let searcher = SuffixArraySearcher::new(ws.text(), &sa);
    let mut mer_freq: std::collections::HashMap<Vec<u8>, usize> = std::collections::HashMap::new();
    for w in ws.text().windows(m) {
        *mer_freq.entry(w.to_vec()).or_insert(0) += 1;
    }
    let mut ranked: Vec<(Vec<u8>, usize)> = mer_freq.into_iter().collect();
    ranked.sort_unstable_by_key(|x| std::cmp::Reverse(x.1));
    ranked.truncate((ranked.len() / 2).max(1));

    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xe2);
    let mut patterns: Vec<Vec<u8>> = Vec::with_capacity(num_patterns);
    let mut min_freq = usize::MAX;
    let mut total_freq = 0usize;
    for _ in 0..num_patterns {
        let (pat, _) = &ranked[rng.gen_range(0..ranked.len())];
        let freq = searcher.count(pat);
        min_freq = min_freq.min(freq);
        total_freq += freq;
        patterns.push(pat.clone());
    }

    let k = (n / 100).max(1);
    let mut baseline = build_method(Method::Bsl1, &ws, k, ctx.seed);
    let mut usi = build_method(Method::Uet, &ws, k, ctx.seed);
    let avg_bsl = replay(baseline.engine.as_mut(), &patterns);
    let avg_usi = replay(usi.engine.as_mut(), &patterns);
    let speedup = avg_bsl.as_secs_f64() / avg_usi.as_secs_f64().max(1e-12);

    let mut report = Report::new(
        "example2",
        "Example 2: frequent short DNA patterns, SA+PSW vs USI_TOP-K \
         (paper: 0.1 ms vs 0.7 µs, ~143x; sizes 85.31 vs 86.38 GB)",
        &["metric", "value"],
    );
    report.rowf(&[&"n", &n]);
    report.rowf(&[&"pattern length m", &m]);
    report.rowf(&[&"patterns", &patterns.len()]);
    report.rowf(&[&"min pattern frequency", &min_freq]);
    report.rowf(&[&"avg pattern frequency", &(total_freq / patterns.len().max(1))]);
    report.rowf(&[&"K", &k]);
    report.rowf(&[&"avg query time, SA+PSW (BSL1)", &fmt_duration(avg_bsl)]);
    report.rowf(&[&"avg query time, USI_TOP-K (UET)", &fmt_duration(avg_usi)]);
    report.rowf(&[&"speedup", &format!("{speedup:.1}x")]);
    report.rowf(&[&"index size, BSL1", &fmt_bytes(baseline.engine.index_size())]);
    report.rowf(&[&"index size, UET", &fmt_bytes(usi.engine.index_size())]);
    vec![report]
}
