//! Shared experiment context: dataset scaling, seeds, parameter sweeps.

use usi_datasets::{Dataset, ALL_DATASETS};
use usi_strings::WeightedString;

/// Scaling and output configuration shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Multiplier on every dataset's default (already laptop-scaled)
    /// length. `1.0` ≈ a few minutes for the full suite.
    pub scale: f64,
    /// Master seed: all generators derive from it.
    pub seed: u64,
    /// Output directory for TSV reports.
    pub out_dir: String,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self { scale: 1.0, seed: 0xdecade, out_dir: "reports".into() }
    }
}

impl ExperimentContext {
    /// Scaled text length for a dataset.
    pub fn n_for(&self, ds: Dataset) -> usize {
        ((ds.spec().default_n as f64 * self.scale) as usize).max(1_000)
    }

    /// Generates the dataset at the scaled length.
    pub fn generate(&self, ds: Dataset) -> WeightedString {
        ds.generate(self.n_for(ds), self.seed ^ ds.spec().sigma as u64)
    }

    /// Generates a prefix-scaled family (the paper's "varying n" axes):
    /// fractions 1/5, 2/5, …, 5/5 of the scaled length.
    pub fn n_sweep(&self, ds: Dataset) -> Vec<usize> {
        let n = self.n_for(ds);
        (1..=5).map(|i| n * i / 5).collect()
    }

    /// The default `K` for a dataset at length `n` (Table II's bold
    /// values, expressed as fractions of `n`).
    pub fn default_k(&self, ds: Dataset, n: usize) -> usize {
        ((n as f64 * ds.spec().default_k_frac) as usize).max(10)
    }

    /// Default sampling rounds `s` (Table II).
    pub fn default_s(&self, ds: Dataset) -> usize {
        ds.spec().default_s
    }

    /// The `s` sweep of Figs. 3j/4/5 (clamped to sensible values).
    pub fn s_sweep(&self, ds: Dataset) -> Vec<usize> {
        match ds {
            Dataset::Iot => vec![4, 6, 10, 20, 40],
            Dataset::Ecoli => vec![6, 8, 20, 40, 80],
            _ => vec![4, 6, 20, 40, 80],
        }
    }

    /// All datasets.
    pub fn datasets(&self) -> [Dataset; 5] {
        ALL_DATASETS
    }

    /// Number of workload queries for a dataset (paper: 0.1M–70M,
    /// scaled down proportionally here).
    pub fn query_count(&self, ds: Dataset) -> usize {
        (self.n_for(ds) / 40).clamp(500, 20_000)
    }
}

/// The paper's `K` sweep for a dataset (Fig. 3a–e / Fig. 6a–e x-axes):
/// the same *fractions of n* as Table II's ranges, five points ending at
/// twice the default.
pub fn scaled_k_sweep(ctx: &ExperimentContext, ds: Dataset, n: usize) -> Vec<usize> {
    let default_k = ctx.default_k(ds, n);
    [1usize, 2, 4, 8, 16].iter().map(|&m| (default_k * m / 8).max(5)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_respects_floor() {
        let ctx = ExperimentContext { scale: 1e-9, ..Default::default() };
        assert_eq!(ctx.n_for(Dataset::Adv), 1_000);
    }

    #[test]
    fn sweeps_are_monotone() {
        let ctx = ExperimentContext::default();
        for ds in ALL_DATASETS {
            let sweep = scaled_k_sweep(&ctx, ds, ctx.n_for(ds));
            assert!(sweep.windows(2).all(|w| w[0] <= w[1]));
            let ns = ctx.n_sweep(ds);
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn generation_uses_scaled_length() {
        let ctx = ExperimentContext { scale: 0.01, ..Default::default() };
        let ws = ctx.generate(Dataset::Adv);
        assert_eq!(ws.len(), ctx.n_for(Dataset::Adv));
    }
}
