//! Experiment harness regenerating every table and figure of the USI
//! paper (Bernardini et al., ICDE 2025), plus shared plumbing for the
//! Criterion micro-benchmarks.
//!
//! Run `cargo run -p usi-bench --release --bin experiments -- list` for
//! the experiment catalogue; each experiment prints paper-shaped rows to
//! stdout and writes a TSV under `reports/`. The mapping from experiment
//! id to paper artifact is in `DESIGN.md` §4 and `EXPERIMENTS.md`.

pub mod context;
pub mod experiments;
pub mod miners;
pub mod report;

pub use context::{scaled_k_sweep, ExperimentContext};
pub use miners::{run_miner, MinerKind, MinerRun};
pub use report::Report;
