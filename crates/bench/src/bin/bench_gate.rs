//! Nightly perf-regression gate.
//!
//! Reads the JSON-lines file the vendored criterion shim appends when
//! `CRITERION_JSON` is set, compares each benchmark's median against the
//! checked-in baselines, and fails (exit 1) when any tracked benchmark
//! regressed by more than the margin — perf changes must be deliberate.
//!
//! ```text
//! bench_gate --current reports/criterion.jsonl \
//!            --thresholds ci/nightly-thresholds.json \
//!            [--margin 0.15] [--report reports/nightly-report.json]
//! bench_gate --current reports/criterion.jsonl \
//!            --thresholds ci/nightly-thresholds.json --update
//! ```
//!
//! * a benchmark listed in the thresholds but absent from the current
//!   run is a failure too (a silently deleted benchmark is regression
//!   rot, not a pass);
//! * benchmarks present in the run but not in the thresholds are
//!   reported as `untracked` and do not fail the gate;
//! * `--update` merges the current medians into the thresholds file —
//!   benches absent from the current run keep their old baselines, so a
//!   partial bench run cannot silently drop benchmarks from tracking
//!   (the calibration path for deliberate changes);
//! * `--report` writes the full comparison as JSON — the artifact the
//!   nightly workflow uploads.

use std::collections::BTreeMap;
use std::process::exit;
use usi_server::json::Json;

fn die(msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    exit(2);
}

fn read_arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .map(|i| args.get(i + 1).unwrap_or_else(|| die(&format!("{name} needs a value"))).clone())
}

/// Parses the shim's JSON-lines output. Re-runs append, so the last
/// occurrence of a name wins (it is the most recent measurement).
fn read_current(path: &str) -> BTreeMap<String, f64> {
    let data =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let mut medians = BTreeMap::new();
    for (lineno, line) in data.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            Json::parse(line).unwrap_or_else(|e| die(&format!("{path}:{}: {e}", lineno + 1)));
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| die(&format!("{path}:{}: missing \"name\"", lineno + 1)));
        let median = value
            .get("median_ns")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| die(&format!("{path}:{}: missing \"median_ns\"", lineno + 1)));
        medians.insert(name.to_string(), median);
    }
    if medians.is_empty() {
        die(&format!("{path} holds no benchmark results — did the bench run with CRITERION_JSON?"));
    }
    medians
}

/// Reads the thresholds file. Keys starting with `_` are free-form
/// annotations (provenance notes like which box the medians came from),
/// not baselines: they are returned separately, preserved by
/// `--update`, and never compared.
fn read_thresholds(path: &str) -> (BTreeMap<String, f64>, Vec<(String, Json)>) {
    let data =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let value = Json::parse(&data).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let Json::Obj(members) = value else {
        die(&format!("{path}: expected a JSON object of name → median_ns"));
    };
    let mut thresholds = BTreeMap::new();
    let mut annotations = Vec::new();
    for (name, v) in members {
        if name.starts_with('_') {
            annotations.push((name, v));
            continue;
        }
        let ns = v.as_f64().unwrap_or_else(|| die(&format!("{path}: {name} is not a number")));
        thresholds.insert(name, ns);
    }
    (thresholds, annotations)
}

fn write_thresholds(path: &str, medians: &BTreeMap<String, f64>, annotations: &[(String, Json)]) {
    let mut members: Vec<(String, Json)> = annotations.to_vec();
    members.extend(medians.iter().map(|(name, &ns)| (name.clone(), Json::Num(ns.round()))));
    let obj = Json::Obj(members);
    std::fs::write(path, obj.encode() + "\n")
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    println!("bench_gate: wrote {} baselines to {path}", medians.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let current_path =
        read_arg(&args, "--current").unwrap_or_else(|| die("--current FILE is required"));
    let thresholds_path =
        read_arg(&args, "--thresholds").unwrap_or_else(|| die("--thresholds FILE is required"));
    let margin: f64 = read_arg(&args, "--margin")
        .map_or(0.15, |m| m.parse().unwrap_or_else(|_| die("bad --margin")));
    let report_path = read_arg(&args, "--report");
    let update = args.iter().any(|a| a == "--update");

    let current = read_current(&current_path);
    if update {
        // merge: benches not in this run keep their existing baselines,
        // and `_`-prefixed annotations survive recalibration
        let (mut merged, annotations) = if std::path::Path::new(&thresholds_path).exists() {
            read_thresholds(&thresholds_path)
        } else {
            (BTreeMap::new(), Vec::new())
        };
        merged.extend(current);
        write_thresholds(&thresholds_path, &merged, &annotations);
        return;
    }
    let (thresholds, _annotations) = read_thresholds(&thresholds_path);

    let mut results: Vec<Json> = Vec::new();
    let mut failures = 0usize;
    println!(
        "{:<52} {:>14} {:>14} {:>7}  status (margin {:.0}%)",
        "benchmark",
        "median_ns",
        "baseline_ns",
        "ratio",
        margin * 100.0
    );
    for (name, &baseline) in &thresholds {
        let (status, detail) = match current.get(name) {
            None => {
                failures += 1;
                ("missing", Json::Null)
            }
            Some(&median) => {
                let ratio = if baseline > 0.0 { median / baseline } else { f64::INFINITY };
                let status = if ratio > 1.0 + margin {
                    failures += 1;
                    "regressed"
                } else {
                    "ok"
                };
                println!("{name:<52} {median:>14.0} {baseline:>14.0} {ratio:>7.3}  {status}");
                (status, Json::Num(ratio))
            }
        };
        if status == "missing" {
            println!("{name:<52} {:>14} {baseline:>14.0} {:>7}  missing", "-", "-");
        }
        results.push(Json::Obj(vec![
            ("name".into(), Json::str(name.clone())),
            ("median_ns".into(), current.get(name).map_or(Json::Null, |&m| Json::Num(m))),
            ("baseline_ns".into(), Json::Num(baseline)),
            ("ratio".into(), detail),
            ("status".into(), Json::str(status)),
        ]));
    }
    for (name, &median) in &current {
        if !thresholds.contains_key(name) {
            println!("{name:<52} {median:>14.0} {:>14} {:>7}  untracked", "-", "-");
            results.push(Json::Obj(vec![
                ("name".into(), Json::str(name.clone())),
                ("median_ns".into(), Json::Num(median)),
                ("baseline_ns".into(), Json::Null),
                ("ratio".into(), Json::Null),
                ("status".into(), Json::str("untracked")),
            ]));
        }
    }

    if let Some(path) = report_path {
        let report = Json::Obj(vec![
            ("margin".into(), Json::Num(margin)),
            ("failures".into(), Json::num(failures as u32)),
            ("results".into(), Json::Arr(results)),
        ]);
        std::fs::write(&path, report.encode() + "\n")
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("bench_gate: report written to {path}");
    }

    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} benchmark(s) regressed past the {:.0}% margin",
            margin * 100.0
        );
        exit(1);
    }
    println!("bench_gate: all {} tracked benchmarks within margin", thresholds.len());
}
