//! CLI driver regenerating the paper's tables and figures.
//!
//! ```text
//! experiments list                 # catalogue
//! experiments all [--scale 0.2]    # everything (scaled)
//! experiments fig6-query-k         # one experiment
//! ```
//!
//! Each experiment prints aligned tables and writes TSVs under
//! `reports/` (override with `--out DIR`). `--scale` multiplies every
//! dataset length (defaults are already laptop-scaled; see DESIGN.md §3).

use std::time::Instant;
use usi_bench::context::ExperimentContext;
use usi_bench::experiments;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <list|all|EXPERIMENT-ID> [--scale FACTOR] [--seed SEED] [--out DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    let mut ctx = ExperimentContext::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                ctx.scale = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                ctx.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                ctx.out_dir = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }

    if command == "list" {
        println!("{:<18}  paper artifact", "id");
        println!("{}", "-".repeat(60));
        for e in experiments::all() {
            println!("{:<18}  {}", e.id, e.artifact);
        }
        return;
    }

    let selected = experiments::select(&command);
    if selected.is_empty() {
        eprintln!("unknown experiment id '{command}' (try 'list')");
        std::process::exit(2);
    }
    println!(
        "# USI experiment harness — scale {}, seed {:#x}, reports in {}/",
        ctx.scale, ctx.seed, ctx.out_dir
    );
    let total = Instant::now();
    for e in selected {
        println!("\n### {} — {}\n", e.id, e.artifact);
        let start = Instant::now();
        for report in (e.run)(&ctx) {
            report.emit(&ctx.out_dir).expect("failed to write report");
        }
        println!("[{} finished in {:.2?}]", e.id, start.elapsed());
    }
    println!("\n# total wall time {:.2?}", total.elapsed());
}
