//! Plain-text experiment reports: aligned tables on stdout plus TSV
//! files under `reports/` (no serde — see DESIGN.md dependency policy).

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A tabular report: header row plus data rows of strings.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `fig3-accuracy-k`.
    pub id: String,
    /// Short description printed above the table.
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// An empty report with the given id, title and column names.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch in {}", self.id);
        self.rows.push(cells.to_vec());
    }

    /// Convenience for mixed-type rows.
    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders tab-separated values (header + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and writes `<dir>/<id>.tsv`.
    pub fn emit(&self, dir: &str) -> std::io::Result<PathBuf> {
        print!("{}", self.to_table());
        println!();
        fs::create_dir_all(dir)?;
        let path = PathBuf::from(dir).join(format!("{}.tsv", self.id));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_tsv().as_bytes())?;
        Ok(path)
    }
}

/// Formats a byte count with a binary-unit suffix.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.2} µs")
    } else if us < 1e6 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{:.2} s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_is_aligned() {
        let mut r = Report::new("t", "test", &["a", "bbbb"]);
        r.rowf(&[&1, &2.5]);
        r.rowf(&[&100, &"x"]);
        let table = r.to_table();
        assert!(table.contains("a  bbbb"));
        assert!(table.lines().count() >= 4);
        let tsv = r.to_tsv();
        assert_eq!(tsv.lines().next().unwrap(), "a\tbbbb");
        assert_eq!(tsv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("t", "test", &["a", "b"]);
        r.row(&["only-one".to_string()]);
    }

    #[test]
    fn byte_and_duration_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert!(fmt_duration(std::time::Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(std::time::Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(std::time::Duration::from_secs(5)).contains(" s"));
    }
}
