//! Uniform wrappers around the four top-K substring miners (ET, AT, TT,
//! SH) so experiments can sweep them interchangeably.

use std::time::{Duration, Instant};
use usi_core::metrics::{evaluate, EffectivenessReport};
use usi_core::{approximate_top_k, ApproxConfig, SubstringRef, TopKOracle};
use usi_streams::{SubstringHk, SubstringMiner, TopKTrie};
use usi_strings::HeapSize;
use usi_suffix::{lcp_array, suffix_array, LceBackend};

/// Which miner to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinerKind {
    /// `Exact-Top-K` (Section V oracle).
    Exact,
    /// `Approximate-Top-K` with `s` rounds.
    Approximate {
        /// Sampling rounds.
        s: usize,
    },
    /// `Top-K Trie` (Section VII).
    TopKTrie,
    /// `SubstringHK` (Section VII).
    SubstringHk,
}

impl MinerKind {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Exact => "ET",
            Self::Approximate { .. } => "AT",
            Self::TopKTrie => "TT",
            Self::SubstringHk => "SH",
        }
    }
}

/// Outcome of one miner run.
#[derive(Debug, Clone)]
pub struct MinerRun {
    /// Which miner.
    pub kind: MinerKind,
    /// Reported substrings with their estimated frequencies.
    pub reported: Vec<(SubstringRef, u64)>,
    /// Wall time of the mining itself.
    pub runtime: Duration,
    /// Peak/final tracked bytes of the miner's own state.
    pub peak_bytes: usize,
}

/// Runs a miner on `text` for the top-`k` substrings. `seed` controls
/// randomized miners.
pub fn run_miner(kind: MinerKind, text: &[u8], k: usize, seed: u64) -> MinerRun {
    let start = Instant::now();
    match kind {
        MinerKind::Exact => {
            let sa = suffix_array(text);
            let lcp = lcp_array(text, &sa);
            let oracle = TopKOracle::new(text.len(), &sa, &lcp);
            let items = oracle.top_k(k);
            let runtime = start.elapsed();
            let peak_bytes = sa.heap_bytes() + lcp.heap_bytes() + oracle.heap_bytes();
            let reported = items
                .iter()
                .map(|t| {
                    (SubstringRef::Witness { pos: sa[t.lb as usize], len: t.len }, t.freq() as u64)
                })
                .collect();
            MinerRun { kind, reported, runtime, peak_bytes }
        }
        MinerKind::Approximate { s } => {
            let cfg = ApproxConfig { k, rounds: s, lce: LceBackend::Naive, fingerprint_base: seed };
            let res = approximate_top_k(text, &cfg);
            let runtime = start.elapsed();
            let reported = res
                .items
                .iter()
                .map(|e| (SubstringRef::Witness { pos: e.witness, len: e.len }, e.freq))
                .collect();
            MinerRun { kind, reported, runtime, peak_bytes: res.peak_tracked_bytes }
        }
        MinerKind::TopKTrie => {
            let mut tt = TopKTrie::new();
            let mined = tt.mine(text, k);
            let runtime = start.elapsed();
            let reported =
                mined.into_iter().map(|m| (SubstringRef::Owned(m.bytes), m.freq)).collect();
            MinerRun { kind, reported, runtime, peak_bytes: tt.state_bytes() }
        }
        MinerKind::SubstringHk => {
            let mut sh = SubstringHk::with_seed(seed);
            let mined = sh.mine(text, k);
            let runtime = start.elapsed();
            let reported =
                mined.into_iter().map(|m| (SubstringRef::Owned(m.bytes), m.freq)).collect();
            MinerRun { kind, reported, runtime, peak_bytes: sh.state_bytes() }
        }
    }
}

/// Scores a miner run against the exact top-K ground truth.
pub fn score_run(
    text: &[u8],
    sa: &[u32],
    exact: &[usi_core::TopKSubstring],
    run: &MinerRun,
) -> EffectivenessReport {
    evaluate(text, sa, exact, &run.reported)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usi_core::oracle::exact_top_k;

    #[test]
    fn all_miners_run_and_exact_scores_one() {
        let text = b"abracadabra".repeat(50);
        let k = 12;
        let (exact, sa) = exact_top_k(&text, k);
        for kind in [
            MinerKind::Exact,
            MinerKind::Approximate { s: 4 },
            MinerKind::TopKTrie,
            MinerKind::SubstringHk,
        ] {
            let run = run_miner(kind, &text, k, 1);
            assert!(run.reported.len() <= k, "{}", kind.label());
            let score = score_run(&text, &sa, &exact, &run);
            if kind == MinerKind::Exact {
                assert_eq!(score.accuracy, 1.0);
            }
            assert!((0.0..=1.0).contains(&score.accuracy));
            assert!(run.peak_bytes > 0);
        }
    }
}
