//! Ablation benchmarks for the design choices called out in DESIGN.md §4:
//! LCE backend inside Approximate-Top-K, plain vs LCP-accelerated
//! suffix-array search, and the fast hasher behind the hash table `H`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use usi_core::oracle::TopKOracle;
use usi_core::{approximate_top_k, ApproxConfig, UsiIndex};
use usi_datasets::Dataset;
use usi_strings::{Fingerprinter, FxHashMap, GlobalUtility};
use usi_suffix::{lcp_array, suffix_array, EsaSearcher, LceBackend, SuffixArraySearcher};

fn bench_lce_backends(c: &mut Criterion) {
    // DNA has enough repeat structure that the backends separate.
    let ws = Dataset::Hum.generate(60_000, 7);
    let mut group = c.benchmark_group("ablation_lce_backends");
    group.sample_size(10);
    for (name, lce) in [
        ("naive", LceBackend::Naive),
        ("fingerprint", LceBackend::Fingerprint),
        ("rmq", LceBackend::Rmq),
    ] {
        let cfg = ApproxConfig::new(600, 6).with_lce(lce);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| approximate_top_k(ws.text(), &cfg))
        });
    }
    group.finish();
}

fn bench_sa_search(c: &mut Criterion) {
    let ws = Dataset::Xml.generate(100_000, 7);
    let sa = suffix_array(ws.text());
    let searcher = SuffixArraySearcher::new(ws.text(), &sa);
    // long patterns with long shared prefixes: the regime where the
    // accelerated search skips work
    let patterns: Vec<&[u8]> = (0..64).map(|i| &ws.text()[i * 37..i * 37 + 200]).collect();
    let mut group = c.benchmark_group("ablation_sa_search");
    group.bench_function("plain_binary_search", |b| {
        b.iter(|| {
            patterns
                .iter()
                .map(|p| searcher.interval(p).map(|r| r.len()).unwrap_or(0))
                .sum::<usize>()
        })
    });
    group.bench_function("lcp_accelerated", |b| {
        b.iter(|| {
            patterns
                .iter()
                .map(|p| searcher.interval_accelerated(p).map(|r| r.len()).unwrap_or(0))
                .sum::<usize>()
        })
    });
    let esa = EsaSearcher::new(ws.text());
    group.bench_function("interval_tree_descent", |b| {
        b.iter(|| {
            patterns.iter().map(|p| esa.interval(p).map(|r| r.len()).unwrap_or(0)).sum::<usize>()
        })
    });
    group.finish();
}

fn bench_hashers(c: &mut Criterion) {
    // The H table is keyed by (len, fingerprint); FxHash vs SipHash.
    let keys: Vec<(u32, u64)> =
        (0..10_000u64).map(|i| (i as u32 & 63, i.wrapping_mul(0x9e37_79b9_7f4a_7c15))).collect();
    let mut fx: FxHashMap<(u32, u64), f64> = FxHashMap::default();
    let mut sip: HashMap<(u32, u64), f64> = HashMap::new();
    for &k in &keys {
        fx.insert(k, 1.0);
        sip.insert(k, 1.0);
    }
    let mut group = c.benchmark_group("ablation_hashers");
    group.bench_function("fx_hash_probe", |b| {
        b.iter(|| keys.iter().map(|k| fx.get(k).copied().unwrap_or(0.0)).sum::<f64>())
    });
    group.bench_function("sip_hash_probe", |b| {
        b.iter(|| keys.iter().map(|k| sip.get(k).copied().unwrap_or(0.0)).sum::<f64>())
    });
    group.finish();
}

fn bench_phase2_marking(c: &mut Criterion) {
    // Phase (ii) of construction: occurrence marking with bit vectors
    // (exact triplets) vs witness-fingerprint sets (estimates). Same
    // top-K input, identical resulting hash tables.
    let ws = Dataset::Xml.generate(60_000, 7);
    let sa = suffix_array(ws.text());
    let lcp = lcp_array(ws.text(), &sa);
    let oracle = TopKOracle::new(ws.len(), &sa, &lcp);
    let triplets = oracle.top_k(600);
    let estimates: Vec<_> = triplets.iter().map(|t| t.to_estimate(&sa)).collect();
    let psw = GlobalUtility::sum_of_sums().local_index(ws.weights());
    let fp = Fingerprinter::with_base(3);

    let mut group = c.benchmark_group("ablation_phase2");
    group.sample_size(10);
    group.bench_function("bit_vector_marking", |b| {
        b.iter(|| UsiIndex::populate_from_triplets(ws.text(), &sa, &psw, &fp, &triplets))
    });
    group.bench_function("fingerprint_set_marking", |b| {
        b.iter(|| UsiIndex::populate_from_estimates(ws.text(), &psw, &fp, &estimates))
    });
    group.finish();
}

fn bench_hash_keys(c: &mut Criterion) {
    // Keying H by fingerprint only vs (length, fingerprint): the paper
    // keys by fingerprint; the pair key removes cross-length collisions
    // for free. Measures probe cost of both schemes.
    let keys: Vec<(u32, u64)> =
        (0..10_000u64).map(|i| ((i % 40) as u32, i.wrapping_mul(0x2545_f491_4f6c_dd1d))).collect();
    let mut pair: FxHashMap<(u32, u64), f64> = FxHashMap::default();
    let mut fp_only: FxHashMap<u64, f64> = FxHashMap::default();
    for &(len, fp) in &keys {
        pair.insert((len, fp), 1.0);
        fp_only.insert(fp, 1.0);
    }
    let mut group = c.benchmark_group("ablation_hash_keys");
    group.bench_function("pair_key", |b| {
        b.iter(|| keys.iter().map(|k| pair.get(k).copied().unwrap_or(0.0)).sum::<f64>())
    });
    group.bench_function("fingerprint_only_key", |b| {
        b.iter(|| keys.iter().map(|(_, f)| fp_only.get(f).copied().unwrap_or(0.0)).sum::<f64>())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lce_backends,
    bench_sa_search,
    bench_hashers,
    bench_phase2_marking,
    bench_hash_keys
);
criterion_main!(benches);
