//! Follower catch-up rate: how fast a replica replays shipped WAL
//! records into a serving [`FollowerDoc`]. Two costs are separated:
//!
//! * `parse_only` — the wire floor: re-parsing (framing + CRC) every
//!   shipped record, what the follower pays even before indexing;
//! * `apply_records` — the full catch-up path: parse, append into the
//!   replaying index, compact to quiescence.
//!
//! Elements/sec here is records/sec — divide a primary's append rate by
//! it to size the steady-state replication lag. Tracked by the nightly
//! gate via `ci/nightly-thresholds.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use usi_core::UsiBuilder;
use usi_datasets::Dataset;
use usi_ingest::{wal, IngestOptions, Wal};
use usi_repl::FollowerDoc;

/// Letters already indexed when replication starts.
const BASE: usize = 1 << 14; // 16 Ki
/// Shipped records per measured catch-up.
const RECORDS: usize = 256;
/// Letters per shipped record.
const RECORD_LEN: usize = 32;

/// Encodes `RECORDS` append batches exactly as a primary's WAL does and
/// returns the raw record bytes (the shipped stream, magic stripped).
fn shipped_bytes() -> Vec<u8> {
    let ws = Dataset::Hum.generate(RECORDS * RECORD_LEN, 23);
    let dir = std::env::temp_dir().join(format!("usi-repl-catchup-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.usil");
    let _ = std::fs::remove_file(&path);
    let (mut w, _) = Wal::open(&path, false).unwrap();
    for i in 0..RECORDS {
        let lo = i * RECORD_LEN;
        w.append(&ws.text()[lo..lo + RECORD_LEN], &ws.weights()[lo..lo + RECORD_LEN]).unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    bytes[wal::MAGIC.len()..].to_vec()
}

fn bench_repl_catchup(c: &mut Criterion) {
    let base = UsiBuilder::new()
        .with_k(BASE / 200)
        .deterministic(3)
        .build(Dataset::Hum.generate(BASE, 22));
    let bytes = shipped_bytes();
    let opts =
        IngestOptions { seal_threshold: 1 << 10, compact_fanout: 4, ..IngestOptions::default() };

    let mut group = c.benchmark_group("repl_catchup");
    group.sample_size(5);
    group.throughput(Throughput::Elements(RECORDS as u64));

    group.bench_function("parse_only", |b| {
        b.iter(|| {
            let mut pos = 0;
            let mut letters = 0usize;
            let mut records = 0u64;
            while let Some((rec, next)) = wal::parse_record_at(&bytes, pos) {
                letters += rec.text.len();
                records += 1;
                pos = next;
            }
            assert_eq!(records, RECORDS as u64);
            letters
        })
    });

    group.bench_function("apply_records", |b| {
        b.iter(|| {
            let doc = FollowerDoc::new("bench", base.clone(), opts.clone());
            doc.apply_records(wal::MAGIC.len() as u64, &bytes).unwrap();
            doc.applied_records()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_repl_catchup);
criterion_main!(benches);
