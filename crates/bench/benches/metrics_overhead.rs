//! Cost of the telemetry on the single-query hot path, measured on the
//! path itself: a live `usi_server` on a loopback socket, one
//! keep-alive connection, one `POST /v1/query` per iteration — first
//! with the `usi_obs` kill switch off (every counter add, histogram
//! observe and span record short-circuits) and then with full
//! instrumentation. Both arms run *identical* code; the delta is
//! exactly what telemetry costs a served request. The budget is ≤5%
//! median overhead; the instruments are relaxed atomics precisely so
//! this stays noise-level next to socket I/O and query work.
//!
//! Request bodies cycle through 4× the pattern-cache capacity, so
//! queries keep taking the computed (cache-miss) path rather than
//! degenerating into LRU hits.
//!
//! Tracked by the nightly gate via `ci/nightly-thresholds.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use usi_core::{UsiBuilder, UsiIndex};
use usi_datasets::Dataset;
use usi_server::{serve, Catalog, ServerConfig};

/// Indexed letters: large enough that queries do real work.
const N: usize = 1 << 18; // 256 Ki
/// Distinct request bodies — 4× the server's per-doc LRU capacity.
const BODIES: usize = 4096;

fn built_index() -> UsiIndex {
    let ws = Dataset::Hum.generate(N, 23);
    UsiBuilder::new().with_k(N / 200).deterministic(5).build(ws)
}

/// Pre-rendered keep-alive HTTP requests, one single-pattern query
/// each, patterns sampled from the indexed text.
fn rendered_requests(index: &UsiIndex) -> Vec<Vec<u8>> {
    let text = index.text();
    let mut rng = StdRng::seed_from_u64(99);
    (0..BODIES)
        .map(|_| {
            let m = rng.gen_range(8..24usize);
            let i = rng.gen_range(0..text.len() - m);
            let pattern: String = text[i..i + m].iter().map(|&b| b as char).collect();
            let body = format!(r#"{{"doc":"bench","patterns":["{pattern}"]}}"#);
            format!(
                "POST /v1/query HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_bytes()
        })
        .collect()
}

/// One request/response exchange on the persistent connection.
fn round_trip(stream: &mut TcpStream, request: &[u8], scratch: &mut Vec<u8>) {
    stream.write_all(request).unwrap();
    scratch.clear();
    let head_end = loop {
        if let Some(pos) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 4096];
        let got = stream.read(&mut chunk).expect("response head");
        assert!(got > 0, "server closed the connection");
        scratch.extend_from_slice(&chunk[..got]);
    };
    let head = std::str::from_utf8(&scratch[..head_end]).unwrap();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length")
        .trim()
        .parse()
        .unwrap();
    let mut body_len = scratch.len() - head_end - 4;
    while body_len < content_length {
        let mut chunk = [0u8; 4096];
        let got = stream.read(&mut chunk).expect("response body");
        assert!(got > 0, "server closed mid-body");
        body_len += got;
    }
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let catalog = Arc::new(Catalog::new(2));
    catalog.insert("bench", built_index());
    let requests = rendered_requests(catalog.get("bench").unwrap().index().unwrap());

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(Arc::clone(&catalog), listener, ServerConfig::with_workers(2)).unwrap();
    let addr = handle.addr();

    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(40);
    group.throughput(Throughput::Elements(1));

    let mut cursor = 0usize;
    let mut scratch = Vec::with_capacity(8192);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    usi_obs::set_enabled(false);
    group.bench_function("request_telemetry_off", |b| {
        b.iter(|| {
            round_trip(&mut stream, &requests[cursor % BODIES], &mut scratch);
            cursor += 1;
        })
    });
    usi_obs::set_enabled(true);
    group.bench_function("request_telemetry_on", |b| {
        b.iter(|| {
            round_trip(&mut stream, &requests[cursor % BODIES], &mut scratch);
            cursor += 1;
        })
    });

    // Flight-recorder A/B: same served path, measured back-to-back with
    // full telemetry on. The `off` arm re-measures the default server
    // (only errors are captured, and this workload has none); the `on`
    // arm hits a second server with --flight-slow-ms 0, so every 200
    // lands its whole stage tree in the flight ring. Both arms are
    // annotation-only in ci/nightly-thresholds.json (`_`-prefixed keys,
    // never gated) — they exist to make a flight-recorder regression
    // visible in the nightly report, not to fail it.
    group.bench_function("request_flight_off", |b| {
        b.iter(|| {
            round_trip(&mut stream, &requests[cursor % BODIES], &mut scratch);
            cursor += 1;
        })
    });
    let flight_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let flight_config = ServerConfig { flight_slow_ms: Some(0), ..ServerConfig::with_workers(2) };
    let flight_handle = serve(Arc::clone(&catalog), flight_listener, flight_config).unwrap();
    let mut flight_stream = TcpStream::connect(flight_handle.addr()).unwrap();
    flight_stream.set_nodelay(true).unwrap();
    group.bench_function("request_flight_on", |b| {
        b.iter(|| {
            round_trip(&mut flight_stream, &requests[cursor % BODIES], &mut scratch);
            cursor += 1;
        })
    });

    group.finish();
    drop(stream);
    drop(flight_stream);
    handle.shutdown();
    flight_handle.shutdown();
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
