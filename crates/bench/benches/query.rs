//! Criterion micro-benchmarks for query answering (the per-point
//! measurements behind Fig. 6a–j): `UET` / `UAT` vs BSL1–BSL4 on a `W1`
//! workload, plus the frequent/infrequent split inside `USI_TOP-K`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use usi_bench::experiments::methods::{build_method, Method};
use usi_core::oracle::TopKOracle;
use usi_core::{QuerySource, UsiBuilder};
use usi_datasets::{w1, Dataset};

fn bench_methods_on_w1(c: &mut Criterion) {
    let ds = Dataset::Xml;
    let ws = ds.generate(60_000, 7);
    let k = 600;
    let (oracle, sa) = TopKOracle::from_text(ws.text());
    let workload = w1(ws.text(), &oracle, &sa, 2_000, 50, (1, 500), 9);

    let mut group = c.benchmark_group("query_w1_fig6");
    for method in Method::lineup(ds.spec().default_s) {
        let mut built = build_method(method, &ws, k, 3);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(method.label()), &(), |b, _| {
            b.iter(|| {
                let q = &workload.queries[i % workload.len()];
                i += 1;
                built.engine.query(q)
            })
        });
    }
    group.finish();
}

fn bench_hash_vs_fallback(c: &mut Criterion) {
    // The two query paths of Theorem 1: O(m) hash hits vs O(m log n + occ)
    // suffix-array fallbacks.
    let ws = Dataset::Hum.generate(100_000, 7);
    let index = UsiBuilder::new().with_k(1_000).deterministic(5).build(ws.clone());

    // a cached (frequent) pattern and an uncached (rare) one
    let frequent = ws.text()[..4].to_vec();
    assert_eq!(index.query(&frequent).source, QuerySource::HashTable);
    let mut rare = ws.text()[..40].to_vec();
    if index.query(&rare).source != QuerySource::TextIndex {
        rare = ws.text()[1..60].to_vec();
    }

    let mut group = c.benchmark_group("query_paths");
    group.bench_function("hash_table_hit", |b| b.iter(|| index.query(&frequent)));
    group.bench_function("text_index_fallback", |b| b.iter(|| index.query(&rare)));
    group.finish();
}

criterion_group!(benches, bench_methods_on_w1, bench_hash_vs_fallback);
criterion_main!(benches);
