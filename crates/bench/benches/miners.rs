//! Criterion micro-benchmarks for the four top-K substring miners
//! (the per-point measurements behind Fig. 5e–j).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use usi_bench::{run_miner, MinerKind};
use usi_datasets::Dataset;

fn bench_miners(c: &mut Criterion) {
    let mut group = c.benchmark_group("miners_fig5");
    group.sample_size(10);
    for ds in [Dataset::Xml, Dataset::Hum] {
        let n = 60_000;
        let ws = ds.generate(n, 7);
        let k = (n / 100).max(10);
        let s = ds.spec().default_s;
        for kind in [
            MinerKind::Exact,
            MinerKind::Approximate { s },
            MinerKind::TopKTrie,
            MinerKind::SubstringHk,
        ] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), ds.spec().name),
                &kind,
                |b, &kind| b.iter(|| run_miner(kind, ws.text(), k, 1)),
            );
        }
    }
    group.finish();
}

fn bench_at_rounds(c: &mut Criterion) {
    // Fig. 5i,j: AT runtime falls as s grows.
    let mut group = c.benchmark_group("at_rounds_fig5ij");
    group.sample_size(10);
    let ws = Dataset::Xml.generate(60_000, 7);
    let k = 600;
    for s in [4usize, 8, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| run_miner(MinerKind::Approximate { s }, ws.text(), k, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_miners, bench_at_rounds);
criterion_main!(benches);
