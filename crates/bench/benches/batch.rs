//! Batch-query amortisation: the serving layer pushes thousands of
//! patterns per request. [`UsiIndex::query_batch`] hoists per-query
//! setup out of the loop and answers repeated patterns once — the win
//! that matters on skewed (hot-pattern-heavy) serving batches. This
//! bench measures the loop vs the batch on a uniform and on a skewed
//! workload, plus the catalog's scoped-thread spread at several widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi_core::{UsiBuilder, UsiIndex};
use usi_datasets::Dataset;
use usi_server::Catalog;

fn workload(index: &UsiIndex, count: usize, seed: u64) -> Vec<Vec<u8>> {
    let text = index.text();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            // mix of short (likely cached) and long (fallback) patterns
            let m = rng.gen_range(2..24usize);
            let i = rng.gen_range(0..text.len() - m);
            text[i..i + m].to_vec()
        })
        .collect()
}

fn bench_looped_vs_batch(c: &mut Criterion) {
    let ws = Dataset::Xml.generate(60_000, 7);
    let index = UsiBuilder::new().with_k(600).deterministic(5).build(ws);
    let patterns = workload(&index, 1_000, 11);
    let refs: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();

    // a skewed batch: the same 1 000 slots drawn from 50 hot patterns,
    // the shape a serving layer actually sees
    let hot = workload(&index, 50, 13);
    let mut rng = StdRng::seed_from_u64(17);
    let skewed: Vec<&[u8]> =
        (0..1_000).map(|_| hot[rng.gen_range(0..hot.len())].as_slice()).collect();

    let mut group = c.benchmark_group("query_batch_amortisation");
    group.throughput(Throughput::Elements(refs.len() as u64));
    group.bench_function("looped_query/uniform", |b| {
        b.iter(|| refs.iter().map(|p| index.query(p).occurrences).sum::<u64>())
    });
    group.bench_function("query_batch/uniform", |b| {
        b.iter(|| index.query_batch(&refs).iter().map(|q| q.occurrences).sum::<u64>())
    });
    group.bench_function("looped_query/skewed", |b| {
        b.iter(|| skewed.iter().map(|p| index.query(p).occurrences).sum::<u64>())
    });
    group.bench_function("query_batch/skewed", |b| {
        b.iter(|| index.query_batch(&skewed).iter().map(|q| q.occurrences).sum::<u64>())
    });
    group.finish();

    // the catalog spreads the same batch over scoped worker threads
    let catalog = Catalog::new(4);
    catalog.insert("doc", index);
    let mut group = c.benchmark_group("catalog_batch_threads");
    group.throughput(Throughput::Elements(refs.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                catalog
                    .query_batch("doc", &refs, threads)
                    .expect("doc is loaded")
                    .iter()
                    .map(|q| q.occurrences)
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_looped_vs_batch);
criterion_main!(benches);
