//! Serial-vs-parallel construction medians: the speedup behind
//! `usi build --threads N` is measured here, not asserted. The nightly
//! workflow runs this bench with `CRITERION_JSON` set and gates the
//! medians against `ci/nightly-thresholds.json`.
//!
//! The input is a ≥ 1 MiB DNA-like Markov text (the paper's HUM
//! profile): realistic repeat structure, so the sharded suffix-array
//! path, the blockwise LCP pass and the per-length phase-(ii) fan-out
//! all do representative work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use usi_core::{BuildOptions, UsiBuilder};
use usi_datasets::Dataset;
use usi_suffix::{lcp_array, lcp_array_threads, suffix_array, suffix_array_threads};

const N: usize = 1 << 20; // 1 MiB
const K: usize = N / 200;

fn bench_end_to_end_build(c: &mut Criterion) {
    let ws = Dataset::Hum.generate(N, 11);
    let mut group = c.benchmark_group("parallel_build");
    group.sample_size(5);
    group.throughput(Throughput::Bytes(N as u64));
    for threads in [1usize, 2, 4, 8] {
        let builder =
            UsiBuilder::new().with_k(K).with_options(BuildOptions { threads }).deterministic(3);
        group.bench_with_input(BenchmarkId::new("build", threads), &builder, |b, builder| {
            b.iter(|| builder.build(ws.clone()))
        });
    }
    group.finish();
}

fn bench_substrate_parallelism(c: &mut Criterion) {
    let ws = Dataset::Hum.generate(N, 11);
    let text = ws.text();
    let mut group = c.benchmark_group("parallel_substrates");
    group.sample_size(5);
    group.throughput(Throughput::Bytes(N as u64));
    group.bench_function("suffix_array/t1", |b| b.iter(|| suffix_array(text)));
    group.bench_function("suffix_array/t4", |b| b.iter(|| suffix_array_threads(text, 4)));
    let sa = suffix_array(text);
    group.bench_function("lcp/t1", |b| b.iter(|| lcp_array(text, &sa)));
    group.bench_function("lcp/t4", |b| b.iter(|| lcp_array_threads(text, &sa, 4)));
    group.finish();
}

criterion_group!(benches, bench_end_to_end_build, bench_substrate_parallelism);
criterion_main!(benches);
