//! Criterion micro-benchmarks for index construction (behind Fig. 6q–t)
//! and its substrate phases (SA-IS, LCP, oracle).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use usi_bench::experiments::methods::{build_method, Method};
use usi_core::oracle::TopKOracle;
use usi_datasets::Dataset;
use usi_suffix::{lcp_array, suffix_array};

fn bench_method_construction(c: &mut Criterion) {
    let ds = Dataset::Xml;
    let ws = ds.generate(60_000, 7);
    let k = 600;
    let mut group = c.benchmark_group("construction_fig6qr");
    group.sample_size(10);
    for method in Method::lineup(ds.spec().default_s) {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &method| b.iter(|| build_method(method, &ws, k, 3).build_time),
        );
    }
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    for n in [50_000usize, 200_000] {
        let ws = Dataset::Hum.generate(n, 7);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("sa_is", n), &(), |b, _| {
            b.iter(|| suffix_array(ws.text()))
        });
        let sa = suffix_array(ws.text());
        group.bench_with_input(BenchmarkId::new("kasai_lcp", n), &(), |b, _| {
            b.iter(|| lcp_array(ws.text(), &sa))
        });
        let lcp = lcp_array(ws.text(), &sa);
        group.bench_with_input(BenchmarkId::new("topk_oracle", n), &(), |b, _| {
            b.iter(|| TopKOracle::new(ws.len(), &sa, &lcp))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_method_construction, bench_substrates);
criterion_main!(benches);
