//! Steady-state append throughput: the segmented ingestion pipeline
//! (`usi_ingest`: seal small segments, tier-merge in the background)
//! against the epoch design it replaces (`DynamicUsi`: rebuild the
//! whole index every threshold letters). Same input, same threshold —
//! the difference is exactly the cost model the ISSUE motivates: the
//! epoch design re-pays the full `O(n)` build on every threshold
//! crossing, the segmented one pays `O(threshold)` per seal plus
//! amortised tier merges.
//!
//! Tracked by the nightly gate via `ci/nightly-thresholds.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use usi_core::{DynamicUsi, UsiBuilder};
use usi_datasets::Dataset;
use usi_ingest::{IngestIndex, IngestOptions};

/// Base document size (letters already indexed when appends start).
const BASE: usize = 1 << 16; // 64 Ki
/// Letters appended per measured iteration.
const APPENDS: usize = 1 << 13; // 8 Ki
/// Seal / rebuild threshold shared by both designs.
const THRESHOLD: usize = 1 << 10; // 1 Ki

fn bench_append_throughput(c: &mut Criterion) {
    let base_ws = Dataset::Hum.generate(BASE, 17);
    let tail_ws = Dataset::Hum.generate(APPENDS, 18);
    let builder = UsiBuilder::new().with_k(BASE / 200).deterministic(3);
    let base = builder.build(base_ws.clone());

    let mut group = c.benchmark_group("ingest_throughput");
    group.sample_size(5);
    group.throughput(Throughput::Elements(APPENDS as u64));

    group.bench_function("segmented_append", |b| {
        b.iter(|| {
            let mut idx = IngestIndex::new(
                base.clone(),
                IngestOptions {
                    seal_threshold: THRESHOLD,
                    compact_fanout: 4,
                    ..IngestOptions::default()
                },
            );
            for (&letter, &weight) in tail_ws.text().iter().zip(tail_ws.weights()) {
                idx.push(letter, weight);
            }
            idx.compact_to_quiescence();
            idx.len()
        })
    });

    group.bench_function("epoch_rebuild_append", |b| {
        b.iter(|| {
            let mut idx = DynamicUsi::new(builder.clone(), base_ws.clone(), THRESHOLD);
            for (&letter, &weight) in tail_ws.text().iter().zip(tail_ws.weights()) {
                idx.push(letter, weight);
            }
            idx.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_append_throughput);
criterion_main!(benches);
