//! Connection-scale benchmark: active-request latency while the idle
//! keep-alive pool grows from 0 to ~10k connections.
//!
//! The reactor's contract is that parked connections are free at serve
//! time — a request on an **active** connection must cost the same
//! whether 0 or 10 000 idle sockets sit in the epoll set. Each tier
//! opens N idle keep-alive connections (parked by the reactor, never
//! written to), then measures `POST /v1/query` round-trips on a handful
//! of active connections through the same server. A regression here
//! means the reactor is doing per-idle-connection work on the serve
//! path (or the pool is being starved), exactly the failure mode the
//! pre-reactor server had.
//!
//! The 10k tier adapts to the process fd budget (each idle connection
//! costs two descriptors in-process: the client end and the server
//! end) but keeps a fixed benchmark name, so thresholds stay
//! comparable on one box. Tracked by the nightly gate via
//! `ci/nightly-thresholds.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use usi_core::{UsiBuilder, UsiIndex};
use usi_datasets::Dataset;
use usi_server::{serve, Catalog, ServerConfig};

/// Indexed letters: large enough that queries do real work.
const N: usize = 1 << 18; // 256 Ki
/// Distinct request bodies — 4× the server's per-doc LRU capacity.
const BODIES: usize = 4096;
/// Idle-pool sizes. Tier names are fixed; the last tier is clamped to
/// the fd budget at runtime (see [`fd_budget`]).
const TIERS: &[(usize, &str)] =
    &[(0, "idle_0"), (256, "idle_256"), (2048, "idle_2048"), (10_240, "idle_10k")];

/// How many idle connections this process can afford: half the
/// `RLIMIT_NOFILE` soft limit (client + server end per connection),
/// minus headroom for the workspace's own descriptors.
fn fd_budget() -> usize {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct Rlimit {
            rlim_cur: u64,
            rlim_max: u64,
        }
        extern "C" {
            fn getrlimit(resource: std::ffi::c_int, rlim: *mut Rlimit) -> std::ffi::c_int;
        }
        const RLIMIT_NOFILE: std::ffi::c_int = 7;
        let mut limit = Rlimit { rlim_cur: 0, rlim_max: 0 };
        // SAFETY: plain syscall filling the struct we hand it.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) } == 0 {
            return (limit.rlim_cur as usize).saturating_sub(1024) / 2;
        }
    }
    512
}

fn built_index() -> UsiIndex {
    let ws = Dataset::Hum.generate(N, 23);
    UsiBuilder::new().with_k(N / 200).deterministic(5).build(ws)
}

/// Pre-rendered keep-alive HTTP requests, one single-pattern query
/// each, patterns sampled from the indexed text.
fn rendered_requests(index: &UsiIndex) -> Vec<Vec<u8>> {
    let text = index.text();
    let mut rng = StdRng::seed_from_u64(17);
    (0..BODIES)
        .map(|_| {
            let m = rng.gen_range(8..24usize);
            let i = rng.gen_range(0..text.len() - m);
            let pattern: String = text[i..i + m].iter().map(|&b| b as char).collect();
            let body = format!(r#"{{"doc":"bench","patterns":["{pattern}"]}}"#);
            format!(
                "POST /v1/query HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_bytes()
        })
        .collect()
}

/// One request/response exchange on the persistent connection.
fn round_trip(stream: &mut TcpStream, request: &[u8], scratch: &mut Vec<u8>) {
    stream.write_all(request).unwrap();
    scratch.clear();
    let head_end = loop {
        if let Some(pos) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 4096];
        let got = stream.read(&mut chunk).expect("response head");
        assert!(got > 0, "server closed the connection");
        scratch.extend_from_slice(&chunk[..got]);
    };
    let head = std::str::from_utf8(&scratch[..head_end]).unwrap();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length")
        .trim()
        .parse()
        .unwrap();
    let mut body_len = scratch.len() - head_end - 4;
    while body_len < content_length {
        let mut chunk = [0u8; 4096];
        let got = stream.read(&mut chunk).expect("response body");
        assert!(got > 0, "server closed mid-body");
        body_len += got;
    }
}

/// Opens `n` connections and parks them idle (never written to). The
/// burst outruns the accept loop, so retry transient connect failures
/// instead of failing the bench.
fn open_idle_pool(addr: std::net::SocketAddr, n: usize) -> Vec<TcpStream> {
    let mut pool = Vec::with_capacity(n);
    let mut failures = 0usize;
    while pool.len() < n {
        match TcpStream::connect(addr) {
            Ok(stream) => pool.push(stream),
            Err(e) => {
                failures += 1;
                assert!(failures < 1000, "cannot grow idle pool past {}: {e}", pool.len());
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    pool
}

fn bench_conn_scale(c: &mut Criterion) {
    let catalog = Arc::new(Catalog::new(2));
    catalog.insert("bench", built_index());
    let requests = rendered_requests(catalog.get("bench").unwrap().index().unwrap());

    // long idle timeout so parked connections survive the whole run;
    // worker pool stays at the default size — the point is that idle
    // connections don't occupy it
    let config = ServerConfig {
        idle_timeout: Duration::from_secs(600),
        max_connections: 100_000,
        ..ServerConfig::with_workers(2)
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(Arc::clone(&catalog), listener, config).unwrap();
    let addr = handle.addr();

    let budget = fd_budget();
    let mut group = c.benchmark_group("conn_scale");
    group.sample_size(30);
    group.throughput(Throughput::Elements(1));

    let mut cursor = 0usize;
    let mut scratch = Vec::with_capacity(8192);

    for &(tier, name) in TIERS {
        let n = tier.min(budget);
        if n < tier {
            eprintln!("conn_scale: fd budget {budget} clamps the {tier}-idle tier to {n}");
        }
        let idle = open_idle_pool(addr, n);
        // wait until the reactor has accepted (and parked) every one
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while handle.open_connections() < n {
            assert!(
                std::time::Instant::now() < deadline,
                "only {} of {n} idle connections accepted",
                handle.open_connections()
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        let mut active = TcpStream::connect(addr).unwrap();
        active.set_nodelay(true).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                round_trip(&mut active, &requests[cursor % BODIES], &mut scratch);
                cursor += 1;
            })
        });
        drop(active);
        drop(idle);
        // let the reactor reap the pool before the next tier doubles up
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while handle.open_connections() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_conn_scale);
criterion_main!(benches);
