//! Cold-load latency of a persisted index: the owned stream load
//! (`read_from`, which copies every section onto the heap and
//! revalidates it) against the zero-copy storage view (`open_mmap`,
//! which validates in place and only materialises `PSW`). The gap is
//! the whole point of the storage redesign: open time stops scaling
//! with the bytes it no longer copies, so a catalog of N corpora
//! cold-starts in O(N · validation) instead of O(total bytes copied).
//!
//! Also measures the first query after each load kind, so the page-in
//! cost the mapping defers is visible rather than hidden.
//!
//! Tracked by the nightly gate via `ci/nightly-thresholds.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::io::Write;
use usi_core::{UsiBuilder, UsiIndex};
use usi_datasets::Dataset;

/// Indexed letters: big enough that copying vs not copying dominates.
const N: usize = 1 << 20; // 1 Mi

fn persisted_index() -> (std::path::PathBuf, u64) {
    let dir = std::env::temp_dir().join("usi-bench-mmap-load");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mmap_load.usix");
    let ws = Dataset::Hum.generate(N, 23);
    let index = UsiBuilder::new().with_k(N / 200).deterministic(5).build(ws);
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    index.write_to(&mut out).unwrap();
    out.flush().unwrap();
    let bytes = std::fs::metadata(&path).unwrap().len();
    (path, bytes)
}

fn bench_mmap_load(c: &mut Criterion) {
    let (path, bytes) = persisted_index();

    let mut group = c.benchmark_group("mmap_load");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes));

    group.bench_function("read_from_cold", |b| {
        b.iter(|| {
            let file = std::fs::File::open(&path).unwrap();
            let mut reader = std::io::BufReader::new(file);
            let index = UsiIndex::read_from(&mut reader).unwrap();
            index.cached_substrings()
        })
    });

    group.bench_function("open_mmap_cold", |b| {
        b.iter(|| {
            let index = usi_core::persist::open_mmap(&path).unwrap();
            index.cached_substrings()
        })
    });

    group.bench_function("read_from_cold_plus_query", |b| {
        b.iter(|| {
            let file = std::fs::File::open(&path).unwrap();
            let mut reader = std::io::BufReader::new(file);
            let index = UsiIndex::read_from(&mut reader).unwrap();
            index.query(b"ACGT").occurrences
        })
    });

    group.bench_function("open_mmap_cold_plus_query", |b| {
        b.iter(|| {
            let index = usi_core::persist::open_mmap(&path).unwrap();
            index.query(b"ACGT").occurrences
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mmap_load);
criterion_main!(benches);
