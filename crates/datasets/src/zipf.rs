//! Zipf-distributed sampling for skewed letter frequencies.

use rand::Rng;

/// A Zipf(`s`) distribution over ranks `0 .. n`: rank `r` has probability
/// proportional to `1 / (r+1)^s`. Sampling is inverse-CDF with binary
/// search (`O(log n)` per draw after `O(n)` setup).
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use usi_datasets::Zipf;
/// let z = Zipf::new(10, 1.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut counts = [0usize; 10];
/// for _ in 0..10_000 { counts[z.sample(&mut rng)] += 1; }
/// assert!(counts[0] > counts[5]);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A distribution over `n ≥ 1` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        *cdf.last_mut().unwrap() = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over a single rank.
    pub fn is_empty(&self) -> bool {
        false // n ≥ 1 is enforced at construction
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequencies_follow_ranks() {
        let z = Zipf::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in 1..8 {
            assert!(counts[r - 1] as f64 > counts[r] as f64 * 0.9, "rank {r}: {counts:?}");
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }
}
