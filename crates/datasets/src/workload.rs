//! Query workloads `W1` and `W2,p` (paper, Section IX-C "Parameters").
//!
//! * `W1`: 90% of the query patterns are drawn from the top-`n/50`
//!   frequent substrings (top-`n/60` for ECOLI in the paper); the
//!   remaining 10% are either repeats of those frequent patterns or
//!   random fragments with length drawn from the dataset's range.
//! * `W2,p`: `p%` of the queries come from the top-`n/100` frequent
//!   substrings; the rest are drawn as in `W1`.
//!
//! Both ensure the mix the paper wants: "queries of frequent substrings
//! and/or queries appearing multiple times".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi_core::oracle::TopKOracle;

/// A generated query workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Report label (`"W1"`, `"W2,40"`, …).
    pub name: String,
    /// The query patterns, in playback order.
    pub queries: Vec<Vec<u8>>,
}

impl Workload {
    /// Total number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Materialises `count` patterns from the top-`k` frequent substrings of
/// `text` as `(pos, len)` picks, avoiding one giant byte copy per
/// distinct substring.
struct FrequentPool {
    picks: Vec<(u32, u32)>, // (witness, len)
}

impl FrequentPool {
    fn new(text: &[u8], oracle: &TopKOracle, sa: &[u32], k: usize) -> Self {
        let _ = text;
        let picks =
            oracle.top_k(k.max(1)).into_iter().map(|t| (sa[t.lb as usize], t.len)).collect();
        Self { picks }
    }

    fn sample<'t>(&self, text: &'t [u8], rng: &mut StdRng) -> &'t [u8] {
        let (pos, len) = self.picks[rng.gen_range(0..self.picks.len())];
        &text[pos as usize..(pos + len) as usize]
    }
}

fn random_fragment<'t>(text: &'t [u8], len_range: (usize, usize), rng: &mut StdRng) -> &'t [u8] {
    let n = text.len();
    let lo = len_range.0.clamp(1, n);
    let hi = len_range.1.clamp(lo, n);
    let len = rng.gen_range(lo..=hi);
    let start = rng.gen_range(0..=(n - len));
    &text[start..start + len]
}

/// Builds a `W1` workload of `count` queries over `text`.
///
/// `top_denominator` is the paper's 50 (or 60 for ECOLI);
/// `len_range` is the dataset's random-pattern length range.
pub fn w1(
    text: &[u8],
    oracle: &TopKOracle,
    sa: &[u32],
    count: usize,
    top_denominator: usize,
    len_range: (usize, usize),
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = FrequentPool::new(text, oracle, sa, text.len() / top_denominator.max(1));
    let mut queries = Vec::with_capacity(count);
    let frequent_count = count * 9 / 10;
    for _ in 0..frequent_count {
        queries.push(pool.sample(text, &mut rng).to_vec());
    }
    for _ in frequent_count..count {
        if rng.gen_bool(0.5) && !queries.is_empty() {
            // repeat a previously selected frequent pattern
            let i = rng.gen_range(0..queries.len());
            queries.push(queries[i].clone());
        } else {
            queries.push(random_fragment(text, len_range, &mut rng).to_vec());
        }
    }
    // interleave so caches see a realistic mix
    shuffle(&mut queries, &mut rng);
    Workload { name: "W1".into(), queries }
}

/// Builds a `W2,p` workload: `p%` of queries from the top-`n/100`
/// frequent substrings, the rest drawn as in `W1`.
#[allow(clippy::too_many_arguments)]
pub fn w2p(
    text: &[u8],
    oracle: &TopKOracle,
    sa: &[u32],
    count: usize,
    p_percent: usize,
    top_denominator: usize,
    len_range: (usize, usize),
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let hot_pool = FrequentPool::new(text, oracle, sa, text.len() / 100);
    let w1_pool = FrequentPool::new(text, oracle, sa, text.len() / top_denominator.max(1));
    let mut queries = Vec::with_capacity(count);
    let hot = count * p_percent.min(100) / 100;
    for _ in 0..hot {
        queries.push(hot_pool.sample(text, &mut rng).to_vec());
    }
    for _ in hot..count {
        // "as in W1": 90% frequent, 10% repeats-or-random
        if rng.gen_bool(0.9) {
            queries.push(w1_pool.sample(text, &mut rng).to_vec());
        } else if rng.gen_bool(0.5) && !queries.is_empty() {
            let i = rng.gen_range(0..queries.len());
            queries.push(queries[i].clone());
        } else {
            queries.push(random_fragment(text, len_range, &mut rng).to_vec());
        }
    }
    shuffle(&mut queries, &mut rng);
    Workload { name: format!("W2,{p_percent}"), queries }
}

fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usi_core::oracle::TopKOracle;

    fn setup(text: &[u8]) -> (TopKOracle, Vec<u32>) {
        TopKOracle::from_text(text)
    }

    #[test]
    fn w1_has_requested_count_and_valid_patterns() {
        let text = b"abracadabra_abracadabra_abracadabra!".repeat(30);
        let (oracle, sa) = setup(&text);
        let w = w1(&text, &oracle, &sa, 200, 50, (1, 50), 1);
        assert_eq!(w.len(), 200);
        for q in &w.queries {
            assert!(!q.is_empty() && q.len() <= text.len());
        }
    }

    #[test]
    fn w1_is_dominated_by_frequent_patterns() {
        let text = b"xyxyxyxyzz".repeat(100);
        let (oracle, sa) = setup(&text);
        let w = w1(&text, &oracle, &sa, 300, 50, (1, 20), 2);
        // at least 80% of the queries must occur ≥ τ times where τ is the
        // top-(n/50) threshold
        let k = text.len() / 50;
        let tau = oracle.tune_for_k(k as u64).unwrap().tau as usize;
        let frequent = w
            .queries
            .iter()
            .filter(|q| text.windows(q.len()).filter(|w| w == &&q[..]).count() >= tau)
            .count();
        assert!(frequent * 10 >= w.len() * 8, "{frequent}/{}", w.len());
    }

    #[test]
    fn w2p_hot_fraction_scales_with_p() {
        let text = b"abcabcabcdefdef".repeat(80);
        let (oracle, sa) = setup(&text);
        let hot_k = text.len() / 100;
        let tau_hot = oracle.tune_for_k(hot_k as u64).unwrap().tau as usize;
        let count_hot = |w: &Workload| {
            w.queries
                .iter()
                .filter(|q| text.windows(q.len()).filter(|x| x == &&q[..]).count() >= tau_hot)
                .count()
        };
        let w20 = w2p(&text, &oracle, &sa, 200, 20, 50, (1, 30), 3);
        let w80 = w2p(&text, &oracle, &sa, 200, 80, 50, (1, 30), 3);
        assert!(count_hot(&w80) >= count_hot(&w20));
        assert_eq!(w20.name, "W2,20");
    }

    #[test]
    fn workloads_are_deterministic() {
        let text = b"banana".repeat(100);
        let (oracle, sa) = setup(&text);
        let a = w1(&text, &oracle, &sa, 50, 50, (1, 10), 9);
        let b = w1(&text, &oracle, &sa, 50, 50, (1, 10), 9);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn len_range_clamped_to_text() {
        let text = b"short".repeat(10); // n = 50
        let (oracle, sa) = setup(&text);
        let w = w1(&text, &oracle, &sa, 40, 50, (1, 20_000), 4);
        for q in &w.queries {
            assert!(q.len() <= 50);
        }
    }
}
