//! Order-`k` Markov text generation (the DNA-like corpora).

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An order-`k` Markov chain over an alphabet of `sigma` letters with
/// randomly drawn (but seeded, hence reproducible) Zipfian transition
/// rows. Produces texts with realistic short-repeat structure: genomic
/// sequences are well approximated by low-order Markov models.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    sigma: usize,
    order: usize,
    /// One Zipf row per context, with a per-context random rank
    /// permutation so different contexts prefer different letters.
    rows: Vec<(Zipf, Vec<u8>)>,
}

impl MarkovChain {
    /// A chain of the given order over `sigma ≤ 256` letters.
    /// `skew` is the Zipf exponent of each transition row.
    pub fn new(sigma: usize, order: usize, skew: f64, seed: u64) -> Self {
        assert!((1..=256).contains(&sigma));
        assert!(order <= 4, "context table is sigma^order; keep order small");
        let contexts = sigma.pow(order as u32);
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = (0..contexts)
            .map(|_| {
                let mut perm: Vec<u8> = (0..sigma as u8).collect();
                // Fisher–Yates with the seeded RNG
                for i in (1..perm.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    perm.swap(i, j);
                }
                (Zipf::new(sigma, skew), perm)
            })
            .collect();
        Self { sigma, order, rows }
    }

    /// Generates `n` letters as alphabet ranks `0..sigma`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<u8> = Vec::with_capacity(n);
        let mut context = 0usize;
        for i in 0..n {
            let (zipf, perm) = &self.rows[context];
            let letter = perm[zipf.sample(&mut rng)];
            out.push(letter);
            if self.order > 0 {
                context = (context * self.sigma + letter as usize) % self.rows.len();
                // keep only the last `order` letters in the context
                if i + 1 >= self.order {
                    // the modulo above already truncates to sigma^order
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length_and_alphabet() {
        let mc = MarkovChain::new(4, 3, 0.8, 1);
        let text = mc.generate(5000, 2);
        assert_eq!(text.len(), 5000);
        assert!(text.iter().all(|&b| b < 4));
        // all letters appear in a long enough text
        for l in 0..4u8 {
            assert!(text.contains(&l), "letter {l} missing");
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let mc = MarkovChain::new(4, 2, 1.0, 7);
        assert_eq!(mc.generate(100, 3), mc.generate(100, 3));
        assert_ne!(mc.generate(100, 3), mc.generate(100, 4));
    }

    #[test]
    fn order_zero_is_iid() {
        let mc = MarkovChain::new(3, 0, 0.0, 5);
        let text = mc.generate(9000, 6);
        let mut counts = [0usize; 3];
        for &b in &text {
            counts[b as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 - 3000.0).abs() < 300.0, "{counts:?}");
        }
    }

    #[test]
    fn markov_text_has_more_repeats_than_uniform() {
        // skewed transitions make trigrams repeat more often than iid
        use std::collections::HashMap;
        let skewed = MarkovChain::new(4, 2, 1.5, 11).generate(4000, 12);
        let uniform = MarkovChain::new(4, 0, 0.0, 11).generate(4000, 12);
        let distinct = |t: &[u8]| {
            let mut s: HashMap<&[u8], ()> = HashMap::new();
            for w in t.windows(6) {
                s.insert(w, ());
            }
            s.len()
        };
        assert!(distinct(&skewed) < distinct(&uniform));
    }
}
