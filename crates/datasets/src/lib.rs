//! Synthetic corpora, utility generators and query workloads mirroring
//! the USI paper's evaluation setup (Section IX-A, Table II).
//!
//! The paper evaluates on five real datasets (ADV, IOT, XML, HUM, ECOLI)
//! of up to 4.6 billion letters. Those corpora are not redistributable
//! here, so this crate generates synthetic stand-ins that match each
//! dataset's *structural* profile — alphabet size, letter-frequency
//! skew, repeat structure (planted long repeats for IOT, tag templates
//! for XML, order-3 Markov DNA for HUM/ECOLI) — and its utility
//! distribution (CTR, RSSI, phred-style confidence, or the paper's
//! uniform `{0.7, 0.75, …, 1}` grid). See DESIGN.md §3 for why this
//! substitution preserves the experiments' shapes.
//!
//! Also provides the paper's two query-workload families `W1` and
//! `W2,p` (Section IX-C, "Parameters").

pub mod corpora;
pub mod markov;
pub mod utilities;
pub mod workload;
pub mod zipf;

pub use corpora::{Dataset, DatasetSpec, ALL_DATASETS};
pub use workload::{w1, w2p, Workload};
pub use zipf::Zipf;
