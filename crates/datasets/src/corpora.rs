//! The five synthetic corpora emulating the paper's datasets (Table II).

use crate::markov::MarkovChain;
use crate::utilities;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi_strings::WeightedString;

/// One of the paper's five evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Advertisement categories with CTR utilities
    /// (paper: n = 2.19·10⁵, σ = 14).
    Adv,
    /// Sensor-beacon identifiers with RSSI utilities and very long
    /// repeated blocks (paper: n = 1.9·10⁷, σ = 63).
    Iot,
    /// Tag-structured markup with grid utilities
    /// (paper: n = 2·10⁸, σ = 95).
    Xml,
    /// Human-genome-like DNA with grid utilities
    /// (paper: n = 2.9·10⁹, σ = 4).
    Hum,
    /// Bacterial DNA with phred-style confidence utilities
    /// (paper: n = 4.6·10⁹, σ = 4).
    Ecoli,
}

/// Static profile of a dataset: alphabet, defaults for `n`, `K`, `s`
/// (Table II), and the pattern-length range its workloads draw from.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Which dataset.
    pub dataset: Dataset,
    /// Report label.
    pub name: &'static str,
    /// Alphabet size σ.
    pub sigma: usize,
    /// Default (scaled-down) text length for experiments.
    pub default_n: usize,
    /// Default `K` as a fraction of `n` (Table II's bold defaults).
    pub default_k_frac: f64,
    /// Default number of sampling rounds `s` (Table II).
    pub default_s: usize,
    /// Random-pattern length range used by the workloads (paper:
    /// `[1, 5000]`, `[1, 20000]` for IOT, `[3, 200]` for ADV) — clamped
    /// to the actual `n` at workload-build time.
    pub pattern_len_range: (usize, usize),
}

/// All five datasets, in the paper's Table II order.
pub const ALL_DATASETS: [Dataset; 5] =
    [Dataset::Adv, Dataset::Iot, Dataset::Xml, Dataset::Hum, Dataset::Ecoli];

impl Dataset {
    /// The dataset's profile.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Adv => DatasetSpec {
                dataset: self,
                name: "ADV",
                sigma: 14,
                default_n: 200_000,
                default_k_frac: 6_000.0 / 218_987.0, // paper's bold K
                default_s: 6,
                pattern_len_range: (3, 200),
            },
            Dataset::Iot => DatasetSpec {
                dataset: self,
                name: "IOT",
                sigma: 63,
                default_n: 400_000,
                default_k_frac: 0.18 / 19.0, // 0.18M of 1.9·10⁷
                // Table II uses s = 20 at n = 1.9·10⁷; s is O(log n)
                // (Section VI), so the comparable choice at laptop scale
                // is smaller. EXPERIMENTS.md records the deviation.
                default_s: 6,
                pattern_len_range: (1, 20_000),
            },
            Dataset::Xml => DatasetSpec {
                dataset: self,
                name: "XML",
                sigma: 95,
                default_n: 500_000,
                default_k_frac: 0.01, // 2M of 2·10⁸
                default_s: 6,
                pattern_len_range: (1, 5_000),
            },
            Dataset::Hum => DatasetSpec {
                dataset: self,
                name: "HUM",
                sigma: 4,
                default_n: 1_000_000,
                default_k_frac: 0.01, // 29M of 2.9·10⁹
                default_s: 6,
                pattern_len_range: (1, 5_000),
            },
            Dataset::Ecoli => DatasetSpec {
                dataset: self,
                name: "ECOLI",
                sigma: 4,
                default_n: 1_000_000,
                default_k_frac: 0.01, // 45M of 4.6·10⁹
                default_s: 8,
                pattern_len_range: (1, 5_000),
            },
        }
    }

    /// Generates an `n`-letter weighted string with this dataset's
    /// profile, deterministically from `seed`.
    pub fn generate(self, n: usize, seed: u64) -> WeightedString {
        let text = match self {
            Dataset::Adv => adv_text(n, seed),
            Dataset::Iot => iot_text(n, seed),
            Dataset::Xml => xml_text(n, seed),
            Dataset::Hum => dna_text(n, 3, 0.9, seed),
            Dataset::Ecoli => dna_text(n, 2, 1.1, seed ^ 0x000e_c011),
        };
        let weights = match self {
            Dataset::Adv => utilities::ctr(n, seed ^ 1),
            Dataset::Iot => utilities::rssi(n, seed ^ 2),
            Dataset::Xml | Dataset::Hum => utilities::uniform_grid(n, seed ^ 3),
            Dataset::Ecoli => utilities::phred(n, seed ^ 4),
        };
        WeightedString::new(text, weights).expect("generators produce matched arrays")
    }

    /// Generates with the spec's default length.
    pub fn generate_default(self, seed: u64) -> WeightedString {
        self.generate(self.spec().default_n, seed)
    }
}

/// ADV: bursty ad-category stream. Marketers repeat short campaign
/// sequences, so we emit Zipf-chosen "campaign" snippets of 2–6 letters.
fn adv_text(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = 14u8;
    // a pool of campaign snippets, Zipf-popular
    let snippets: Vec<Vec<u8>> = (0..40)
        .map(|_| {
            let len = rng.gen_range(2..=6);
            (0..len).map(|_| b'a' + rng.gen_range(0..sigma)).collect()
        })
        .collect();
    let zipf = Zipf::new(snippets.len(), 1.1);
    let mut out = Vec::with_capacity(n + 8);
    while out.len() < n {
        if rng.gen_bool(0.7) {
            out.extend_from_slice(&snippets[zipf.sample(&mut rng)]);
        } else {
            out.push(b'a' + rng.gen_range(0..sigma));
        }
    }
    out.truncate(n);
    out
}

/// IOT: beacon-identifier stream with *planted long repeats* — periodic
/// sensor sweeps replay long blocks, which is what makes the paper's IOT
/// top-K contain substrings thousands of letters long. Replays are often
/// truncated (interrupted sweeps) and block popularity is Zipfian, so the
/// frequency spectrum decays instead of being a flat band of ties —
/// matching real sensor logs, where shorter sweep prefixes recur more
/// often than complete sweeps.
fn iot_text(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = 63u8;
    let letter = |rng: &mut StdRng| b'!' + rng.gen_range(0..sigma); // '!'..='_'
    let block_len = (n / 200).clamp(16, 4096);
    let blocks: Vec<Vec<u8>> =
        (0..6).map(|_| (0..block_len).map(|_| letter(&mut rng)).collect()).collect();
    let zipf = Zipf::new(blocks.len(), 1.3);
    let mut out = Vec::with_capacity(n + block_len);
    while out.len() < n {
        if rng.gen_bool(0.7) {
            let block = &blocks[zipf.sample(&mut rng)];
            // interrupted sweep: replay a prefix, sometimes the whole block
            let take = if rng.gen_bool(0.4) {
                block.len()
            } else {
                rng.gen_range(block.len() / 8..=block.len())
            };
            out.extend_from_slice(&block[..take]);
        } else {
            let burst = rng.gen_range(4..40);
            for _ in 0..burst {
                out.push(letter(&mut rng));
            }
        }
    }
    out.truncate(n);
    out
}

/// XML: tag-template markup over printable ASCII.
fn xml_text(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    const TAGS: [&str; 8] =
        ["article", "title", "author", "year", "journal", "volume", "pages", "ee"];
    let zipf = Zipf::new(TAGS.len(), 0.7);
    let mut out = Vec::with_capacity(n + 64);
    while out.len() < n {
        let tag = TAGS[zipf.sample(&mut rng)];
        out.push(b'<');
        out.extend_from_slice(tag.as_bytes());
        out.push(b'>');
        let content_len = rng.gen_range(3..30);
        for _ in 0..content_len {
            // printable ASCII excluding '<' and '>'
            let mut c = b' ' + rng.gen_range(0..95);
            if c == b'<' || c == b'>' {
                c = b'_';
            }
            out.push(c);
        }
        out.push(b'<');
        out.push(b'/');
        out.extend_from_slice(tag.as_bytes());
        out.push(b'>');
    }
    out.truncate(n);
    out
}

/// DNA-like text: order-`order` Markov chain over {A, C, G, T}.
fn dna_text(n: usize, order: usize, skew: f64, seed: u64) -> Vec<u8> {
    const ACGT: [u8; 4] = [b'A', b'C', b'G', b'T'];
    let chain = MarkovChain::new(4, order, skew, seed);
    chain.generate(n, seed ^ 0xd9a).into_iter().map(|r| ACGT[r as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use usi_strings::Alphabet;

    #[test]
    fn alphabet_sizes_match_specs() {
        for ds in ALL_DATASETS {
            let ws = ds.generate(30_000, 1);
            let sigma = Alphabet::from_text(ws.text()).sigma();
            let spec = ds.spec();
            assert!(
                sigma <= spec.sigma + 12 && sigma * 3 >= spec.sigma,
                "{}: sigma {} vs spec {}",
                spec.name,
                sigma,
                spec.sigma
            );
            assert_eq!(ws.len(), 30_000);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in ALL_DATASETS {
            assert_eq!(ds.generate(5_000, 42), ds.generate(5_000, 42));
        }
    }

    #[test]
    fn iot_has_long_repeats() {
        // The planted sweep blocks must create repeats hundreds of
        // letters long — the regime where the streaming miners fail.
        let ws = Dataset::Iot.generate(60_000, 7);
        let sa = usi_suffix::suffix_array(ws.text());
        let lcp = usi_suffix::lcp_array(ws.text(), &sa);
        let longest_repeat = lcp.iter().copied().max().unwrap_or(0);
        assert!(longest_repeat >= 200, "longest repeat only {longest_repeat}");
    }

    #[test]
    fn xml_is_tag_structured() {
        let ws = Dataset::Xml.generate(20_000, 9);
        let opens = ws.text().iter().filter(|&&b| b == b'<').count();
        assert!(opens > 200, "tags too sparse: {opens}");
    }

    #[test]
    fn dna_is_acgt_only() {
        for ds in [Dataset::Hum, Dataset::Ecoli] {
            let ws = ds.generate(10_000, 11);
            assert!(ws.text().iter().all(|b| b"ACGT".contains(b)));
        }
    }

    #[test]
    fn weights_match_dataset_styles() {
        let adv = Dataset::Adv.generate(10_000, 13);
        assert!(adv.weights().iter().any(|&w| w > 10.0)); // CTR spikes
        let iot = Dataset::Iot.generate(10_000, 13);
        assert!(iot.weights().iter().all(|&w| (0.0..=1.0).contains(&w)));
        let hum = Dataset::Hum.generate(10_000, 13);
        assert!(hum.weights().iter().all(|&w| (0.7..=1.0 + 1e-9).contains(&w)));
    }
}
