//! Per-position utility generators matching the paper's sources.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Click-through-rate utilities (ADV): overwhelmingly a floor value
/// (0.1 in the paper's Fig. 1) with occasional large rates for
/// high-value ad positions — a heavy-tailed mixture.
pub fn ctr(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| if rng.gen_bool(0.85) { 0.1 } else { rng.gen_range(10.0..120.0) }).collect()
}

/// RSSI utilities normalised into `[0, 1]` (IOT): signal strength is
/// strongly autocorrelated in time, so we generate a bounded random walk.
pub fn rssi(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: f64 = rng.gen_range(0.3..0.7);
    (0..n)
        .map(|_| {
            v += rng.gen_range(-0.05..0.05);
            v = v.clamp(0.0, 1.0);
            v
        })
        .collect()
}

/// Phred-style confidence scores in `[0, 1]` (ECOLI): mostly high
/// confidence with a quality dip towards read ends; emulated as a
/// periodic quality profile plus noise.
pub fn phred(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let read_len = 150usize;
    (0..n)
        .map(|i| {
            let pos_in_read = i % read_len;
            let base = 0.98 - 0.3 * (pos_in_read as f64 / read_len as f64).powi(2);
            (base + rng.gen_range(-0.02..0.02)).clamp(0.0, 1.0)
        })
        .collect()
}

/// The paper's synthetic utilities for XML and HUM: uniform over the
/// grid `{0.7, 0.75, 0.8, …, 1.0}` ("as in \[8\]").
pub fn uniform_grid(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| 0.7 + 0.05 * rng.gen_range(0..7) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctr_is_heavy_tailed() {
        let w = ctr(10_000, 1);
        let floor = w.iter().filter(|&&x| x == 0.1).count();
        assert!(floor > 7_500 && floor < 9_500, "{floor}");
        assert!(w.iter().cloned().fold(0.0f64, f64::max) > 10.0);
    }

    #[test]
    fn rssi_is_autocorrelated_and_bounded() {
        let w = rssi(10_000, 2);
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // adjacent deltas are small
        assert!(w.windows(2).all(|p| (p[0] - p[1]).abs() <= 0.05 + 1e-12));
    }

    #[test]
    fn phred_dips_towards_read_ends() {
        let w = phred(1500, 3);
        let early: f64 = (0..10).map(|r| w[r * 150 + 5]).sum::<f64>() / 10.0;
        let late: f64 = (0..10).map(|r| w[r * 150 + 145]).sum::<f64>() / 10.0;
        assert!(early > late, "{early} vs {late}");
    }

    #[test]
    fn grid_values_on_grid() {
        let w = uniform_grid(1000, 4);
        for &x in &w {
            let steps = (x - 0.7) / 0.05;
            assert!((steps - steps.round()).abs() < 1e-9);
            assert!((0.7..=1.0 + 1e-12).contains(&x));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(ctr(100, 9), ctr(100, 9));
        assert_eq!(rssi(100, 9), rssi(100, 9));
        assert_eq!(phred(100, 9), phred(100, 9));
        assert_eq!(uniform_grid(100, 9), uniform_grid(100, 9));
    }
}
