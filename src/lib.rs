//! # usi — Useful String Indexing
//!
//! A from-scratch Rust implementation of **“Indexing Strings with
//! Utilities”** (Bernardini, Chen, Conte, Grossi, Guerrini, Loukides,
//! Pisanti, Pissis — ICDE 2025): index a string whose positions carry
//! numerical *utilities* so that the global utility `U(P)` of any query
//! pattern `P` — aggregated over **all** of its occurrences — is
//! answered in `O(|P| + τ_K)` time from an `O(n + K)`-space structure.
//!
//! ## Quick start
//!
//! ```
//! use usi::prelude::*;
//!
//! // a text whose positions carry utilities (e.g. confidence scores)
//! let ws = WeightedString::new(
//!     b"ATACCCCGATAATACCCCAG".to_vec(),
//!     vec![0.9, 1.0, 3.0, 2.0, 0.7, 1.0, 1.0, 0.6, 0.5, 0.5,
//!          0.5, 0.8, 1.0, 1.0, 1.0, 0.9, 1.0, 1.0, 0.8, 1.0],
//! ).unwrap();
//!
//! // index it: top-K frequent substrings get precomputed utilities
//! let index = UsiBuilder::new().with_k(8).deterministic(42).build(ws);
//!
//! // Example 1 of the paper: U("TACCCC") = 8.7 + 5.9 = 14.6
//! let q = index.query(b"TACCCC");
//! assert_eq!(q.occurrences, 2);
//! assert!((q.value.unwrap() - 14.6).abs() < 1e-9);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`usi_strings`] | weighted strings, Karp–Rabin fingerprints, utility functions, `PSW` |
//! | [`usi_suffix`] | SA-IS, LCP, RMQ, LCE oracles, lcp-intervals, sparse suffix arrays, Ukkonen |
//! | [`usi_core`] | the top-K oracle, Exact/Approximate-Top-K, the `USI_TOP-K` index, metrics |
//! | [`usi_streams`] | Misra–Gries, SpaceSaving, count-min, HeavyKeeper, SubstringHK, Top-K Trie |
//! | [`usi_baselines`] | the BSL1–BSL4 query baselines |
//! | [`usi_datasets`] | synthetic corpora, utility generators, `W1`/`W2,p` workloads |
//! | [`usi_ingest`] | WAL-durable append-log ingestion: sealed segments, tiered compaction |
//! | [`usi_server`] | sharded multi-index catalog, batch queries, HTTP serving layer |
//! | [`usi_repl`] | log-shipping replication: WAL shipper, followers, remote fan-out backend |
//!
//! See `DESIGN.md` for the paper-to-module map and `EXPERIMENTS.md` for
//! the reproduced tables and figures.

pub use usi_baselines as baselines;
pub use usi_core as core;
pub use usi_datasets as datasets;
pub use usi_ingest as ingest;
pub use usi_obs as obs;
pub use usi_repl as repl;
pub use usi_server as server;
pub use usi_streams as streams;
pub use usi_strings as strings;
pub use usi_suffix as suffix;

/// The most common imports in one place.
pub mod prelude {
    pub use usi_core::{
        approximate_top_k, exact_top_k, ApproxConfig, DynamicUsi, QuerySource, TopKOracle,
        TopKStrategy, UsiBuilder, UsiIndex, UsiQuery,
    };
    pub use usi_ingest::{IngestConfig, IngestIndex, IngestOptions, IngestPipeline};
    pub use usi_server::{Catalog, ServerConfig};
    pub use usi_strings::{GlobalAggregator, GlobalUtility, WeightedString};
    pub use usi_suffix::LceBackend;
}
