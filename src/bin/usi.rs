//! `usi` — command-line front end for Useful String Indexing.
//!
//! ```text
//! usi build <text-file> [--weights FILE | --uniform W] [--k K | --tau T]
//!           [--approx S] [--agg sum|min|max|avg|count] [--local sum|product]
//!           [--seed N] [--threads N] -o OUT.usix
//! usi query <OUT.usix> <pattern> [<pattern>…] [--json] [--mmap]
//! usi stats <OUT.usix> [--mmap]
//! usi inspect <OUT.usix | WAL.usil>
//! usi topk  <text-file> --k K [--min-len L]
//! usi tradeoff <text-file> [--points N]
//! usi serve <dir-or-.usix>… [--addr HOST:PORT] [--workers N] [--shards N]
//!           [--mmap] [--ingest-wal DIR] [--seal-threshold N]
//!           [--compact-fanout F] [--segment-dir DIR]
//!           [--slow-query-ms N] [--access-log off|text|json]
//!           [--flight-slow-ms N] [--trace-capacity N]
//!           [--max-connections N] [--idle-timeout-ms N] [--no-reactor]
//!           [--repl-listen HOST:PORT] [--follow HOST:PORT | --follow-dir DIR]
//!           [--shard HOST:PORT]… [--repl-poll-ms N]
//! usi ingest <base.usix> --wal PATH [--seal-threshold N] [--compact-fanout F]
//!           [--threads N] [--weight W] [--no-sync] [--mmap]
//!           [--segment-dir DIR] [--json] [--replay [--query P]…]
//! ```
//!
//! `--mmap` loads `.usix` files as zero-copy storage views
//! (`usi_core::persist::open_mmap`): cold-start and resident memory
//! scale with the number of indexes instead of their bytes, at the
//! price of the kernel paging sections in on first touch. `inspect`
//! validates a file and prints its header, section sizes and checksum
//! — the first tool to reach for over a suspect index file.
//!
//! Weights default to 1.0 per position; `--weights` reads
//! whitespace-separated floats (one per text byte). `serve` runs the
//! HTTP serving layer over every loaded index until stdin reaches EOF
//! (or the process receives SIGINT); with `--ingest-wal DIR` every
//! document becomes append-able (`POST /v1/docs/{id}/append`) with its
//! write-ahead log at `DIR/<id>.usil`, replayed on startup. `ingest`
//! opens one base index + WAL directly: `--replay` recovers the log and
//! answers `--query` patterns (crash-recovery check), otherwise stdin
//! lines `append <text>` / `appendw <w> <text>` / `query <p>` / `stats`
//! drive the pipeline interactively.
//!
//! Replication (`usi_repl`): `--repl-listen` makes an ingest-enabled
//! server a **primary** that streams its documents' WALs to followers;
//! `usi serve base.usix --follow primary:port` runs a **follower** that
//! replays the stream into live indexes (serving reads the whole time,
//! staleness on `usi_repl_lag_records`); `--follow-dir` watches shipped
//! `.usil` files instead of a TCP stream; `--shard addr` (repeatable,
//! no local files needed) runs a **fan-out front end** whose documents
//! are remote shards, merged through the usual `"doc": "*"` path.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpListener;
use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use usi::core::oracle::TopKOracle;
use usi::prelude::*;
use usi::server::json::query_result_json;
use usi::strings::text::display_bytes;
use usi::strings::LocalWindow;

fn die(msg: &str) -> ! {
    eprintln!("usi: {msg}");
    exit(2);
}

fn read_text(path: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    File::open(path)
        .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")))
        .read_to_end(&mut buf)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    // drop one trailing newline so `echo text > file` works naturally
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    buf
}

fn read_weights(path: &str, n: usize) -> Vec<f64> {
    let mut s = String::new();
    File::open(path)
        .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")))
        .read_to_string(&mut s)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let weights: Vec<f64> = s
        .split_whitespace()
        .map(|t| t.parse().unwrap_or_else(|_| die(&format!("bad weight {t:?}"))))
        .collect();
    if weights.len() != n {
        die(&format!("{} weights for a {n}-byte text", weights.len()));
    }
    weights
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

/// Flags that never take a value (so `--json idx.usix` does not swallow
/// the index path as the flag's value).
const BOOLEAN_FLAGS: &[&str] = &["json", "replay", "no-sync", "mmap", "no-reactor"];

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let value = if BOOLEAN_FLAGS.contains(&name) {
                    None
                } else {
                    raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned()
                };
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else if raw[i] == "-o" {
                let value = raw.get(i + 1).cloned();
                i += 1;
                flags.push(("out".into(), value));
            } else {
                positional.push(raw[i].clone());
            }
            i += 1;
        }
        Self { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    /// Every value of a repeatable flag (e.g. `--query a --query b`).
    fn flags_all(&self, name: &str) -> Vec<&str> {
        self.flags.iter().filter(|(n, _)| n == name).filter_map(|(_, v)| v.as_deref()).collect()
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn parse_agg(s: &str) -> GlobalAggregator {
    match s {
        "sum" => GlobalAggregator::Sum,
        "min" => GlobalAggregator::Min,
        "max" => GlobalAggregator::Max,
        "avg" => GlobalAggregator::Avg,
        "count" => GlobalAggregator::Count,
        other => die(&format!("unknown aggregator {other}")),
    }
}

fn cmd_build(args: &Args) {
    let [text_path] = &args.positional[..] else {
        die("build expects exactly one text file");
    };
    let text = read_text(text_path);
    let n = text.len();
    let weights = match (args.flag("weights"), args.flag("uniform")) {
        (Some(path), None) => read_weights(path, n),
        (None, Some(w)) => vec![w.parse().unwrap_or_else(|_| die("bad --uniform")); n],
        (None, None) => vec![1.0; n],
        _ => die("--weights and --uniform are mutually exclusive"),
    };
    let ws = WeightedString::new(text, weights).unwrap_or_else(|e| die(&e.to_string()));

    let mut builder = UsiBuilder::new();
    match (args.flag("k"), args.flag("tau")) {
        (Some(k), None) => builder = builder.with_k(k.parse().unwrap_or_else(|_| die("bad --k"))),
        (None, Some(t)) => {
            builder = builder.with_tau(t.parse().unwrap_or_else(|_| die("bad --tau")))
        }
        (None, None) => {}
        _ => die("--k and --tau are mutually exclusive"),
    }
    if let Some(s) = args.flag("approx") {
        builder = builder.with_strategy(TopKStrategy::Approximate {
            rounds: s.parse().unwrap_or_else(|_| die("bad --approx")),
            lce: LceBackend::Naive,
        });
    }
    if let Some(agg) = args.flag("agg") {
        builder = builder.with_aggregator(parse_agg(agg));
    }
    if let Some(local) = args.flag("local") {
        builder = builder.with_local_window(match local {
            "sum" => LocalWindow::Sum,
            "product" => LocalWindow::Product,
            other => die(&format!("unknown local window {other}")),
        });
    }
    builder = builder.deterministic(
        args.flag("seed")
            .map(|s| s.parse().unwrap_or_else(|_| die("bad --seed")))
            .unwrap_or(0xbeef),
    );
    // Parallel construction: output is byte-identical at any thread
    // count (CI cmp-gates this), so --threads is purely a speed knob.
    if let Some(t) = args.flag("threads") {
        builder = builder.with_threads(t.parse().unwrap_or_else(|_| die("bad --threads")));
    }

    let out_path = args.flag("out").unwrap_or_else(|| die("build requires -o OUT"));
    let index = builder.build(ws);
    let stats = index.stats();
    eprintln!(
        "built: n = {}, cached = {}, tau = {:?}, lengths = {}, construction = {:.2?}",
        stats.n,
        stats.k_stored,
        stats.tau,
        stats.distinct_lengths,
        stats.total_time()
    );
    let mut out = BufWriter::new(
        File::create(out_path).unwrap_or_else(|e| die(&format!("cannot create output: {e}"))),
    );
    index.write_to(&mut out).unwrap_or_else(|e| die(&format!("write failed: {e}")));
    out.flush().unwrap_or_else(|e| die(&format!("flush failed: {e}")));
    eprintln!("wrote {out_path}");
}

fn load_index(path: &str, mmap: bool) -> UsiIndex {
    if mmap {
        return usi::core::persist::open_mmap(Path::new(path))
            .unwrap_or_else(|e| die(&format!("load failed: {path}: {e}")));
    }
    let mut input = BufReader::new(
        File::open(path).unwrap_or_else(|e| die(&format!("cannot open {path}: {e}"))),
    );
    UsiIndex::read_from(&mut input).unwrap_or_else(|e| die(&format!("load failed: {e}")))
}

fn cmd_query(args: &Args) {
    if args.positional.len() < 2 {
        die("query expects an index file and at least one pattern");
    }
    let index = load_index(&args.positional[0], args.has("mmap"));
    let agg = index.utility().aggregator;
    let json = args.has("json");
    for pattern in &args.positional[1..] {
        let q = index.query(pattern.as_bytes());
        if json {
            // one JSON object per pattern, same encoding as the server
            println!("{}", query_result_json(pattern.as_bytes(), &q).encode());
        } else {
            println!(
                "{}\t{}\t{}\t{}",
                pattern,
                q.occurrences,
                q.value.map_or("n/a".into(), |v| format!("{v}")),
                match q.source {
                    QuerySource::HashTable => "cached",
                    QuerySource::TextIndex => "computed",
                }
            );
        }
    }
    if !json {
        eprintln!("aggregator: {}", agg.name());
    }
}

/// The ingest knobs shared by `serve --ingest-wal` and `usi ingest`.
fn ingest_config(args: &Args) -> IngestConfig {
    let mut config = IngestConfig::default();
    if let Some(t) = args.flag("seal-threshold") {
        config.seal_threshold = t.parse().unwrap_or_else(|_| die("bad --seal-threshold"));
    }
    if let Some(f) = args.flag("compact-fanout") {
        config.compact_fanout = f.parse().unwrap_or_else(|_| die("bad --compact-fanout"));
    }
    if let Some(t) = args.flag("threads") {
        config.threads = t.parse().unwrap_or_else(|_| die("bad --threads"));
    }
    // segment-aware mmap: sealed/compacted segments are persisted here
    // and served through zero-copy storage views
    config.segment_dir = args.flag("segment-dir").map(std::path::PathBuf::from);
    config.sync_wal = !args.has("no-sync");
    config
}

/// Expands the serve arguments (files or directories) into the sorted
/// list of `.usix` files, mirroring `Catalog::load_path`'s selection.
fn usix_files(paths: &[String]) -> Vec<std::path::PathBuf> {
    let mut files = Vec::new();
    for path in paths {
        let path = Path::new(path);
        let meta = std::fs::metadata(path)
            .unwrap_or_else(|e| die(&format!("cannot load {}: {e}", path.display())));
        if !meta.is_dir() {
            files.push(path.to_path_buf());
            continue;
        }
        let mut entries: Vec<_> = std::fs::read_dir(path)
            .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())))
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "usix"))
            .collect();
        entries.sort();
        files.extend(entries);
    }
    files
}

fn cmd_serve(args: &Args) {
    // replication topology flags (usi_repl): at most one role
    let repl_listen = args.flag("repl-listen");
    let follow = args.flag("follow");
    let follow_dir = args.flag("follow-dir");
    let shard_addrs = args.flags_all("shard");
    let repl_poll = std::time::Duration::from_millis(
        args.flag("repl-poll-ms")
            .map_or(50, |s| s.parse().unwrap_or_else(|_| die("bad --repl-poll-ms"))),
    );
    if follow.is_some() && follow_dir.is_some() {
        die("--follow and --follow-dir are mutually exclusive");
    }
    let follow_source = match (follow, follow_dir) {
        (Some(addr), None) => Some(usi::repl::FollowSource::Tcp(addr.to_string())),
        (None, Some(dir)) => Some(usi::repl::FollowSource::Dir(dir.into())),
        _ => None,
    };
    if follow_source.is_some() && (repl_listen.is_some() || args.has("ingest-wal")) {
        die("a follower is read-only: --follow conflicts with --repl-listen/--ingest-wal");
    }
    if !shard_addrs.is_empty() && (follow_source.is_some() || repl_listen.is_some()) {
        die("--shard runs a front end; it cannot also be a primary or follower");
    }
    if repl_listen.is_some() && !args.has("ingest-wal") {
        die("--repl-listen ships WALs and therefore requires --ingest-wal DIR");
    }
    if args.positional.is_empty() && shard_addrs.is_empty() {
        die("serve expects at least one .usix file or directory of .usix files");
    }
    if !args.positional.is_empty() && !shard_addrs.is_empty() {
        die("--shard serves remote documents only; drop the local .usix arguments");
    }
    let shards: usize =
        args.flag("shards").map_or(8, |s| s.parse().unwrap_or_else(|_| die("bad --shards")));
    let workers: usize =
        args.flag("workers").map_or(4, |s| s.parse().unwrap_or_else(|_| die("bad --workers")));
    let addr = args.flag("addr").unwrap_or("127.0.0.1:7878");
    // observability knobs: requests slower than the threshold are logged
    // to stderr (and counted in usi_http_slow_requests_total); the access
    // log mirrors every request in text or JSON
    let slow_query_ms: Option<u64> = args
        .flag("slow-query-ms")
        .map(|s| s.parse().unwrap_or_else(|_| die("bad --slow-query-ms")));
    let access_log = args.flag("access-log").map_or(usi::server::AccessLog::Off, |s| {
        usi::server::AccessLog::parse(s)
            .unwrap_or_else(|| die("bad --access-log (expected off, text or json)"))
    });
    // tracing knobs: requests whose whole lifetime exceeds the flight
    // threshold (default: --slow-query-ms; errors always) land in the
    // flight recorder at /debug/requests; trace-capacity resizes the
    // span ring behind /v1/trace
    let flight_slow_ms: Option<u64> = args
        .flag("flight-slow-ms")
        .map(|s| s.parse().unwrap_or_else(|_| die("bad --flight-slow-ms")));
    if let Some(capacity) = args.flag("trace-capacity") {
        let capacity: usize = capacity.parse().unwrap_or_else(|_| die("bad --trace-capacity"));
        usi_obs::tracer().set_capacity(capacity.max(1));
    }
    // connection-scale knobs: the reactor parks idle keep-alive sockets
    // in an epoll set (Linux; --no-reactor or other platforms fall back
    // to thread-per-connection), max-connections bounds the descriptor
    // budget, idle-timeout-ms evicts silent clients
    let max_connections: Option<usize> = args
        .flag("max-connections")
        .map(|s| s.parse().unwrap_or_else(|_| die("bad --max-connections")));
    let idle_timeout_ms: Option<u64> = args
        .flag("idle-timeout-ms")
        .map(|s| s.parse().unwrap_or_else(|_| die("bad --idle-timeout-ms")));
    let no_reactor = args.has("no-reactor");
    let ingest_wal = args.flag("ingest-wal").map(std::path::PathBuf::from);
    let load_opts = usi::server::LoadOptions { mmap: args.has("mmap"), threads: 0 };

    let catalog = Arc::new(Catalog::new(shards));
    let mut seen = std::collections::HashSet::new();
    let mut follower: Option<usi::repl::Follower> = None;
    if let Some(source) = &follow_source {
        // follower: every .usix becomes a replaying FollowerDoc served
        // through the catalog's engine backend (reads work the whole
        // time; appends are refused — the primary owns the WAL)
        let config = ingest_config(args);
        let opts = IngestOptions {
            seal_threshold: config.seal_threshold,
            compact_fanout: config.compact_fanout,
            threads: config.threads,
            seed: config.seed,
            segment_dir: None,
        };
        let mut docs = Vec::new();
        for file in usix_files(&args.positional) {
            let stem =
                file.file_stem().map_or_else(String::new, |s| s.to_string_lossy().into_owned());
            if !seen.insert(stem.clone()) {
                die(&format!("duplicate document id {stem:?} (file stems must be unique)"));
            }
            let index = load_index(&file.display().to_string(), args.has("mmap"));
            let doc = Arc::new(usi::repl::FollowerDoc::new(stem.clone(), index, opts.clone()));
            catalog.insert_engine(stem, Arc::clone(&doc) as _);
            docs.push(doc);
        }
        let running = usi::repl::Follower::start(
            docs,
            source,
            usi::repl::FollowerConfig {
                poll_interval: repl_poll,
                ..usi::repl::FollowerConfig::default()
            },
        );
        catalog.set_role(usi::server::Role::Follower);
        catalog.set_replication(running.status());
        follower = Some(running);
    } else if !shard_addrs.is_empty() {
        // fan-out front end: each shard's whole corpus ("*") appears as
        // one remote document; "doc": "*" here merges across shards
        for addr in &shard_addrs {
            if !seen.insert((*addr).to_string()) {
                die(&format!("duplicate --shard {addr}"));
            }
            let remote =
                usi::repl::RemoteDoc::connect(*addr, "*", std::time::Duration::from_secs(5))
                    .unwrap_or_else(|e| die(&format!("cannot reach shard {addr}: {e}")));
            catalog.insert_engine((*addr).to_string(), Arc::new(remote) as _);
        }
    } else if let Some(wal_dir) = &ingest_wal {
        // every document is ingest-enabled: its index moves straight
        // into a pipeline (no transient static copy), its WAL lives at
        // DIR/<id>.usil and is replayed right now, and compaction runs
        // on a background thread per document
        std::fs::create_dir_all(wal_dir)
            .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", wal_dir.display())));
        let config = IngestConfig { background_compaction: true, ..ingest_config(args) };
        for file in usix_files(&args.positional) {
            let stem =
                file.file_stem().map_or_else(String::new, |s| s.to_string_lossy().into_owned());
            let wal_path = wal_dir.join(format!("{stem}.usil"));
            let mut doc_config = config.clone();
            if let Some(dir) = &doc_config.segment_dir {
                // segment files are named by offset/length only, so
                // each document gets its own namespace under the dir
                doc_config.segment_dir = Some(dir.join(&stem));
            }
            let (doc, replay) = catalog
                .load_usix_ingest_with(&file, &wal_path, doc_config, load_opts)
                .unwrap_or_else(|e| die(&format!("cannot load {}: {e}", file.display())));
            if !seen.insert(doc.id().to_string()) {
                die(&format!("duplicate document id {:?} (file stems must be unique)", doc.id()));
            }
            if !replay.records.is_empty() || replay.truncated {
                eprintln!(
                    "replayed {} record(s) for {} from {}{}",
                    replay.records.len(),
                    doc.id(),
                    wal_path.display(),
                    if replay.truncated { " (torn tail dropped)" } else { "" },
                );
            }
        }
    } else {
        for path in &args.positional {
            let ids = catalog
                .load_path_with(Path::new(path), load_opts)
                .unwrap_or_else(|e| die(&format!("cannot load {path}: {e}")));
            for id in &ids {
                // ids are file stems; a collision would silently shadow
                // the earlier index, so refuse to serve ambiguous corpora
                if !seen.insert(id.clone()) {
                    die(&format!("duplicate document id {id:?} (file stems must be unique)"));
                }
            }
        }
    }
    for id in catalog.doc_ids() {
        let doc = catalog.get(&id).expect("listed");
        eprintln!(
            "loaded {id}: n = {}{}{}",
            doc.n(),
            if doc.is_ingest() { " (ingest-enabled)" } else { "" },
            if doc.index().is_some_and(UsiIndex::is_memory_mapped) { " (mmap)" } else { "" }
        );
    }
    if catalog.is_empty() {
        die("no .usix indexes found to serve");
    }

    let listener =
        TcpListener::bind(addr).unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    let mut config = ServerConfig {
        slow_query_ms,
        flight_slow_ms,
        access_log,
        ..ServerConfig::with_workers(workers)
    };
    if let Some(max) = max_connections {
        config.max_connections = max.max(1);
    }
    if let Some(ms) = idle_timeout_ms {
        config.idle_timeout = std::time::Duration::from_millis(ms.max(1));
    }
    config.reactor = !no_reactor;
    let handle = usi::server::serve(Arc::clone(&catalog), listener, config)
        .unwrap_or_else(|e| die(&format!("cannot start server: {e}")));
    let mut shipper = None;
    if let Some(repl_addr) = repl_listen {
        let repl_listener = TcpListener::bind(repl_addr)
            .unwrap_or_else(|e| die(&format!("cannot bind --repl-listen {repl_addr}: {e}")));
        let running = usi::repl::Shipper::start(
            repl_listener,
            Arc::clone(&catalog) as _,
            usi::repl::ShipperConfig {
                poll_interval: repl_poll,
                ..usi::repl::ShipperConfig::default()
            },
        )
        .unwrap_or_else(|e| die(&format!("cannot start replication shipper: {e}")));
        catalog.set_role(usi::server::Role::Primary);
        eprintln!("replication: shipping WALs to followers on {}", running.addr());
        shipper = Some(running);
    }
    eprintln!(
        "serving {} doc(s) on http://{} with {workers} worker(s) as {}; \
         stdin EOF or SIGINT stops",
        catalog.len(),
        handle.addr(),
        catalog.role().name(),
    );

    // Block until the controlling input closes, then shut down
    // gracefully (SIGINT terminates the process the default way).
    let _ = std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink());
    eprintln!("stdin closed, shutting down");
    if let Some(shipper) = shipper.take() {
        shipper.shutdown();
    }
    if let Some(follower) = follower.take() {
        follower.shutdown();
    }
    handle.shutdown();
}

/// Prints one query answer: the shared JSON encoding with `--json`,
/// the `query` subcommand's tab format otherwise.
fn print_ingest_answer(pattern: &str, q: &usi::prelude::UsiQuery, json: bool) {
    if json {
        println!("{}", query_result_json(pattern.as_bytes(), q).encode());
    } else {
        println!(
            "{}\t{}\t{}\t{}",
            pattern,
            q.occurrences,
            q.value.map_or("n/a".into(), |v| format!("{v}")),
            match q.source {
                QuerySource::HashTable => "cached",
                QuerySource::TextIndex => "computed",
            }
        );
    }
}

fn print_ingest_stats(stats: &usi::ingest::IngestStats) {
    println!(
        "n\t{}\nbase\t{}\nsegments\t{}\ntail\t{}\nwal_bytes\t{}\nseals\t{}\ncompactions\t{}",
        stats.n,
        stats.base_n,
        stats.segments,
        stats.tail_len,
        stats.wal_bytes,
        stats.seals,
        stats.compactions,
    );
}

fn cmd_ingest(args: &Args) {
    let [base_path] = &args.positional[..] else {
        die("ingest expects exactly one base .usix file");
    };
    let wal_path = args.flag("wal").unwrap_or_else(|| die("ingest requires --wal PATH"));
    let base = load_index(base_path, args.has("mmap"));
    let config = ingest_config(args);
    let (pipeline, replay) = IngestPipeline::open(base, Path::new(wal_path), config)
        .unwrap_or_else(|e| die(&format!("cannot open {wal_path}: {e}")));
    let replayed_letters: usize = replay.records.iter().map(|r| r.text.len()).sum();
    let stats = pipeline.stats();
    eprintln!(
        "replayed {} record(s) ({} letters){}; n = {}, segments = {}, tail = {}",
        replay.records.len(),
        replayed_letters,
        if replay.truncated { " — torn tail dropped" } else { "" },
        stats.n,
        stats.segments,
        stats.tail_len,
    );
    let json = args.has("json");
    let weight: f64 =
        args.flag("weight").map_or(1.0, |w| w.parse().unwrap_or_else(|_| die("bad --weight")));

    if args.has("replay") {
        // crash-recovery mode: recover, answer, exit — no stdin
        for pattern in args.flags_all("query") {
            print_ingest_answer(pattern, &pipeline.query(pattern.as_bytes()), json);
        }
        return;
    }

    // interactive mode: one command per stdin line
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => die(&format!("stdin: {e}")),
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        let (command, rest) = trimmed.split_once(' ').unwrap_or((trimmed, ""));
        match command {
            "" => {}
            "append" => match pipeline.append_uniform(rest.as_bytes(), weight) {
                Ok(()) => eprintln!("appended {} letter(s)", rest.len()),
                Err(e) => eprintln!("usi: append failed: {e}"),
            },
            "appendw" => {
                let Some((w, text)) = rest.split_once(' ') else {
                    eprintln!("usi: usage: appendw <weight> <text>");
                    continue;
                };
                match w.parse::<f64>() {
                    Ok(w) => match pipeline.append_uniform(text.as_bytes(), w) {
                        Ok(()) => eprintln!("appended {} letter(s) at weight {w}", text.len()),
                        Err(e) => eprintln!("usi: append failed: {e}"),
                    },
                    Err(_) => eprintln!("usi: bad weight {w:?}"),
                }
            }
            "query" => print_ingest_answer(rest, &pipeline.query(rest.as_bytes()), json),
            "stats" => print_ingest_stats(&pipeline.stats()),
            "quit" | "exit" => break,
            other => eprintln!("usi: unknown command {other:?} (append/appendw/query/stats/quit)"),
        }
    }
}

fn cmd_stats(args: &Args) {
    let [path] = &args.positional[..] else {
        die("stats expects exactly one index file");
    };
    let index = load_index(path, args.has("mmap"));
    let size = index.size_breakdown();
    println!("n\t{}", index.text().len());
    println!("cached substrings\t{}", index.cached_substrings());
    println!("tau\t{:?}", index.stats().tau);
    println!("aggregator\t{}", index.utility().aggregator.name());
    println!("text bytes\t{}", size.text);
    println!("weight bytes\t{}", size.weights);
    println!("suffix array bytes\t{}", size.suffix_array);
    println!("psw bytes\t{}", size.psw);
    println!("hash table bytes\t{}", size.hash_table);
    println!("total bytes\t{}", size.total());
}

/// `usi inspect <file.usix | file.usil>`: for an index file, header,
/// section layout and checksum status via the zero-copy open path — the
/// debugging tool for a `.usix` file that refuses to load. For an
/// ingest/replication WAL, the recovery report: record count, the valid
/// byte offset a follower would resume from, per-record CRC status and
/// whether a torn tail would be dropped.
fn cmd_inspect(args: &Args) {
    let [path] = &args.positional[..] else {
        die("inspect expects exactly one index file");
    };
    let bytes = std::fs::read(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    // informational content fingerprint: CRC-32, the same polynomial
    // the ingest WAL stamps its records with
    let crc = usi::ingest::wal::crc32(&bytes);
    println!("file\t{path}");
    println!("file bytes\t{}", bytes.len());
    println!("crc32\t{crc:#010x}");
    // a `.usil` WAL (by extension or magic): print the recovery report
    let wal_magic = bytes.starts_with(&usi::ingest::wal::MAGIC)
        || (!bytes.is_empty() && usi::ingest::wal::MAGIC.starts_with(&bytes));
    if Path::new(path).extension().is_some_and(|ext| ext == "usil") || wal_magic {
        return inspect_wal(&bytes);
    }
    let index = match usi::core::persist::open_mmap(Path::new(path)) {
        Ok(index) => index,
        Err(e) => {
            println!("status\tcorrupt: {e}");
            exit(1);
        }
    };
    let stats = index.stats();
    let size = index.size_breakdown();
    println!("status\tvalid (magic, tags, permutation, weights, entry order)");
    println!("format\tUSIX v1");
    println!("backing\t{}", if index.is_memory_mapped() { "mmap" } else { "heap" });
    println!("n\t{}", index.text().len());
    println!("aggregator\t{}", index.utility().aggregator.name());
    println!(
        "local window\t{}",
        match index.utility().local {
            LocalWindow::Sum => "sum",
            LocalWindow::Product => "product",
        }
    );
    println!("fingerprint base\t{}", index.fingerprinter().base());
    println!("cached substrings\t{}", index.cached_substrings());
    println!("k requested\t{}", stats.k_requested);
    println!("tau\t{}", stats.tau.map_or("n/a".into(), |t| t.to_string()));
    println!("distinct lengths\t{}", stats.distinct_lengths);
    println!(
        "section bytes\ttext {}, weights {}, suffix array {}, hash table {}",
        size.text, size.weights, size.suffix_array, size.hash_table
    );
    println!("psw bytes (derived on load)\t{}", size.psw);
    println!("total bytes\t{}", size.total());
}

/// The `.usil` half of `inspect`: replays the bytes with the WAL's own
/// crash-recovery parser and reports what a restart (or a follower
/// resuming from this file) would see. A torn tail is recoverable —
/// replay drops it — so it exits 0; a wrong magic exits 1.
fn inspect_wal(bytes: &[u8]) {
    println!("format\tUSIL v1 (ingest write-ahead log)");
    let replay = match usi::ingest::wal::replay_bytes(bytes) {
        Ok(replay) => replay,
        Err(e) => {
            println!("status\tcorrupt: {e}");
            exit(1);
        }
    };
    let letters: usize = replay.records.iter().map(|r| r.text.len()).sum();
    println!("status\t{}", if replay.truncated { "torn tail (recoverable)" } else { "clean" });
    println!("records\t{}", replay.records.len());
    println!("letters\t{letters}");
    println!("valid byte offset\t{}", replay.valid_len);
    println!("crc status\tall {} record(s) verified", replay.records.len());
    if replay.truncated {
        println!(
            "torn tail\t{} byte(s) past offset {} fail framing or CRC; replay drops them",
            bytes.len() as u64 - replay.valid_len,
            replay.valid_len
        );
    } else {
        println!("torn tail\tnone");
    }
}

fn cmd_topk(args: &Args) {
    let [path] = &args.positional[..] else {
        die("topk expects exactly one text file");
    };
    let text = read_text(path);
    let k: usize = args
        .flag("k")
        .unwrap_or_else(|| die("topk requires --k"))
        .parse()
        .unwrap_or_else(|_| die("bad --k"));
    let min_len: u32 =
        args.flag("min-len").map_or(1, |s| s.parse().unwrap_or_else(|_| die("bad --min-len")));
    let (oracle, sa) = TopKOracle::from_text(&text);
    let mut emitted = 0usize;
    'outer: for e in oracle.entries() {
        let lo = (e.parent_depth + 1).max(min_len);
        for len in lo..=e.depth {
            if emitted == k {
                break 'outer;
            }
            let pos = sa[e.lb as usize] as usize;
            let sub = &text[pos..pos + len as usize];
            println!("{}\t{}", e.freq, display_bytes(&sub[..sub.len().min(60)]));
            emitted += 1;
        }
    }
}

fn cmd_tradeoff(args: &Args) {
    let [path] = &args.positional[..] else {
        die("tradeoff expects exactly one text file");
    };
    let text = read_text(path);
    let points: usize =
        args.flag("points").map_or(20, |s| s.parse().unwrap_or_else(|_| die("bad --points")));
    let (oracle, _) = TopKOracle::from_text(&text);
    let curve = oracle.tradeoff_curve();
    let step = (curve.len() / points.max(1)).max(1);
    println!("tau\tK\tL");
    for p in curve.iter().step_by(step) {
        println!("{}\t{}\t{}", p.tau, p.k, p.distinct_lengths);
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        die("usage: usi <build|query|stats|inspect|topk|tradeoff|serve|ingest> …");
    };
    let args = Args::parse(&raw[1..]);
    match command.as_str() {
        "build" => cmd_build(&args),
        "query" => cmd_query(&args),
        "stats" => cmd_stats(&args),
        "inspect" => cmd_inspect(&args),
        "topk" => cmd_topk(&args),
        "tradeoff" => cmd_tradeoff(&args),
        "serve" => cmd_serve(&args),
        "ingest" => cmd_ingest(&args),
        other => die(&format!("unknown command {other}")),
    }
}
