//! Per-test configuration and case outcomes for the `proptest!` driver.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shim of `proptest::test_runner::Config` (field subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Accepted cases to run per test.
    pub cases: u32,
    /// `prop_assume!` rejection budget, as a multiple of `cases`.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases, max_global_rejects: 40 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case, draw another.
    Reject,
    /// `prop_assert*!` failed: the whole test fails.
    Fail(String),
}

/// Deterministic per-test RNG: seeded from the test name (FNV-1a) so a
/// failure reproduces on re-run; `PROPTEST_SEED` perturbs all tests.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(s) = seed.parse::<u64>() {
            h ^= s.rotate_left(17);
        }
    }
    StdRng::seed_from_u64(h)
}
