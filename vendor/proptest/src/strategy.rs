//! Value-generation strategies: the shim generates (it does not shrink).

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Upstream proptest strategies produce value *trees* that support
/// shrinking; this shim's strategies produce plain values.
pub trait Strategy {
    type Value: Debug + Clone;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Shim of `proptest::strategy::Just`: always the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a default "any value" strategy (shim of `Arbitrary`).
pub trait ArbitraryValue: Debug + Clone + Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty => $bits:expr),*) => {$(
        impl ArbitraryValue for $ty {
            fn arbitrary(rng: &mut StdRng) -> Self {
                (rng.gen::<u64>() >> (64 - $bits)) as $ty
            }
        }
    )*};
}

impl_arbitrary_uint!(u8 => 8, u16 => 16, u32 => 32, u64 => 64);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl ArbitraryValue for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() as usize
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Shim of `proptest::prelude::any::<T>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between same-typed strategies; built by `prop_oneof!`.
#[derive(Clone, Debug)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Strategy returned by [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
