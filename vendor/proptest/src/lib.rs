//! Offline API-subset shim of `proptest 1`.
//!
//! Provides the slice of the proptest API used by this workspace —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`,
//! `prop_assume!`, `prop_oneof!`, `Just`, `any::<T>()`, range
//! strategies, `collection::vec`, and `ProptestConfig::with_cases` —
//! as randomized case generation **without shrinking**: a failing case
//! reports the generated inputs verbatim.
//!
//! Determinism: the RNG seed is derived from the test function's name so
//! failures reproduce across runs; set `PROPTEST_SEED` to vary it and
//! `PROPTEST_CASES` to change the per-test case count (default 64).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Shim of `proptest::collection::vec`: a `Vec` whose length is drawn
    /// from `len` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Expands to one `#[test]` function per case block, running
/// `ProptestConfig::cases` random cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            // local bindings so the strategies are built once, like proptest
            $(let $arg = $strat;)+
            let __strategies = ($(&$arg,)+);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(config.max_global_rejects),
                    "proptest '{}': too many prop_assume! rejections \
                     ({} attempts for {} accepted cases)",
                    stringify!($name), attempts, accepted,
                );
                let ($($arg,)+) = {
                    let ($($arg,)+) = __strategies;
                    ($($crate::strategy::Strategy::generate($arg, &mut rng),)+)
                };
                let __report = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                    $(&$arg),+
                );
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}\n  inputs: {}",
                            stringify!($name), accepted, msg, __report,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r,
            )));
        }
    }};
}

/// `prop_assert_ne!(left, right)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// `prop_assume!(cond)`: silently discard the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// `prop_oneof![s1, s2, …]`: pick one of several same-typed strategies
/// uniformly. (The upstream macro also accepts weights and heterogeneous
/// strategies; this shim covers the unweighted homogeneous form.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}
