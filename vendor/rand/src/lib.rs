//! Offline API-subset shim of `rand 0.8`.
//!
//! The build environment has no registry access, so this crate provides
//! the (small) slice of the `rand` API that the workspace actually uses,
//! with the same call signatures: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, `rngs::{StdRng, SmallRng}`,
//! `thread_rng()`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — fast,
//! well-distributed, and fully deterministic for a given seed.

use std::ops::{Range, RangeInclusive};

/// The raw-output half of the generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // width in u64 space; an empty range is a caller bug
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range called with an empty range");
                let span = span as u128;
                if span == 1 << 64 {
                    return rng.next_u64() as $ty;
                }
                // widening-multiply range reduction (bias < 2^-64: irrelevant here)
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo <= hi), "gen_range called with an empty range");
                let unit = <$ty as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Shim of `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Shim of `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Shim of `rand::rngs::ThreadRng` (not thread-local: a fresh
    /// time-seeded generator per call to [`crate::thread_rng`]).
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) Xoshiro256);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Shim of `rand::thread_rng()`: seeded from the wall clock and a
/// per-call counter rather than OS entropy.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x1234_5678_9abc_def0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(Xoshiro256::from_u64(nanos ^ n.rotate_left(32)))
}

pub mod seq {
    use super::RngCore;

    /// Shim of `rand::seq::SliceRandom` (shuffle only).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..30);
            assert!((3..30).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-1.0..2.0);
            assert!((-1.0..2.0).contains(&z));
            let b = rng.gen_range(b'a'..=b'd');
            assert!((b'a'..=b'd').contains(&b));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(0u64..u64::MAX);
    }
}
