//! Offline API-subset shim of `criterion 0.5`.
//!
//! Supports the `criterion_group!`/`criterion_main!` structure with
//! benchmark groups, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and `Bencher::iter`. Instead of
//! criterion's statistical machinery it runs a warm-up pass followed by
//! `sample_size` timed samples and reports min/median/mean per
//! benchmark. CLI compatibility: ignores common flags (`--bench`,
//! `--noplot`, …) and honours a positional substring filter, so
//! `cargo bench <filter>` works.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Shim of `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Shim of `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Shim of `criterion::Bencher`: times repeated runs of a closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // warm-up, and a guard against optimizing the routine away
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// One named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(&full, &b.samples, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        report(&full, &b.samples, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let mut line =
        format!("{name:<56} min {:>12?}  median {:>12?}  mean {:>12?}", sorted[0], median, mean,);
    if let Some(Throughput::Bytes(bytes)) = throughput {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            line.push_str(&format!("  {:>9.1} MiB/s", bytes as f64 / secs / (1 << 20) as f64));
        }
    }
    println!("{line}");
    machine_report(name, &sorted, median, mean);
}

/// Nightly-CI hook: when `CRITERION_JSON` names a file, append one JSON
/// object per benchmark (JSON-lines) so the regression gate can compare
/// the medians against checked-in thresholds without scraping stdout.
fn machine_report(name: &str, sorted: &[Duration], median: Duration, mean: Duration) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => " ".chars().collect(),
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"name\":\"{escaped}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}\n",
        median.as_nanos(),
        mean.as_nanos(),
        sorted[0].as_nanos(),
        sorted.len(),
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = result {
        eprintln!("criterion shim: cannot append to CRITERION_JSON={path}: {e}");
    }
}

/// Shim of `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` / the libtest harness pass flags we don't need;
        // the first non-flag argument acts as a substring filter.
        let filter =
            std::env::args().skip(1).find(|a| !a.starts_with('-')).filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, sample_size: 20, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.to_string();
        if self.matches(&full) {
            let mut b = Bencher { samples: Vec::new(), sample_size: 20 };
            f(&mut b);
            report(&full, &b.samples, None);
        }
        self
    }
}

/// Shim of `criterion_group!`: defines a function running each benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Shim of `criterion_main!`: the `main` for a `harness = false` bench.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs the binary with --test: skip
            // measuring in that mode, mirroring criterion's behaviour.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
