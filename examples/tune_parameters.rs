//! Tuning `K` and `τ` with the Section-V oracle (Tasks (ii) and (iii)).
//!
//! Before building `USI_TOP-K`, the linear-space oracle predicts, for
//! any candidate `K`, the query-time bound `τ_K` and the construction
//! factor `L_K` — and inversely, for any target query time `τ`, the
//! space `K_τ` it will cost. This example sweeps both directions and
//! verifies the predictions against a real build.
//!
//! Run with: `cargo run --release --example tune_parameters`

use usi::core::oracle::TopKOracle;
use usi::datasets::Dataset;
use usi::prelude::*;

fn main() {
    let ws = Dataset::Xml.generate(200_000, 9);
    let n = ws.len();
    let (oracle, _sa) = TopKOracle::from_text(ws.text());
    println!("n = {n}, distinct substrings = {}", oracle.total_distinct_substrings());

    // Task (ii): given K, predict query time (τ_K) and construction (L_K).
    println!("\nK → (τ_K, L_K): pick your size, read off query/construction cost");
    println!("{:>10} {:>8} {:>6}", "K", "τ_K", "L_K");
    for exp in [10u32, 12, 14, 16] {
        let k = 1u64 << exp;
        if let Some(t) = oracle.tune_for_k(k) {
            println!("{:>10} {:>8} {:>6}", k, t.tau, t.distinct_lengths);
        }
    }

    // Task (iii): given τ, predict the space K_τ.
    println!("\nτ → (K_τ, L_τ): pick your query-time bound, read off the space");
    println!("{:>8} {:>10} {:>6}", "τ", "K_τ", "L_τ");
    for tau in [500u32, 200, 100, 50, 20] {
        let t = oracle.tune_for_tau(tau);
        println!("{:>8} {:>10} {:>6}", tau, t.k, t.distinct_lengths);
    }

    // Verify one prediction against an actual build.
    let k = 1 << 12;
    let predicted = oracle.tune_for_k(k).expect("non-trivial text");
    let index = UsiBuilder::new().with_k(k as usize).deterministic(1).build(ws);
    let stats = index.stats();
    println!("\nverification for K = {k}:");
    println!("  predicted τ_K = {}, built index reports τ_K = {:?}", predicted.tau, stats.tau);
    println!(
        "  predicted L_K = {}, built index swept {} lengths in phase (ii)",
        predicted.distinct_lengths, stats.distinct_lengths
    );
    assert_eq!(Some(predicted.tau), stats.tau);
    assert_eq!(predicted.distinct_lengths as usize, stats.distinct_lengths);
    println!("  predictions match the built structure.");
}
