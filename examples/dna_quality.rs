//! DNA quality evaluation (the paper's Example 2 scenario).
//!
//! A bioinformatics workload: a genome-like text where every position
//! carries a sequencing confidence score. Researchers evaluate the
//! quality of short DNA patterns by their aggregate confidence over all
//! occurrences — patterns this short occur thousands of times, which is
//! exactly the regime where `USI_TOP-K` beats the classic
//! suffix-array-plus-prefix-sums approach by orders of magnitude.
//!
//! Run with: `cargo run --release --example dna_quality`

use std::time::Instant;
use usi::datasets::Dataset;
use usi::prelude::*;

fn main() {
    // ~1M bp of order-3 Markov DNA with phred-like confidence utilities.
    let ws = Dataset::Ecoli.generate(1_000_000, 7);
    let n = ws.len();
    println!("indexed {n} bp of DNA with per-base confidence scores");

    let build_start = Instant::now();
    let index = UsiBuilder::new()
        .with_k(n / 100)
        .with_aggregator(GlobalAggregator::Avg)
        .deterministic(11)
        .build(ws);
    println!(
        "built USI_TOP-K (K = n/100 = {}) in {:.2?}; {} cached substrings",
        n / 100,
        build_start.elapsed(),
        index.cached_substrings()
    );

    // Evaluate the average confidence of some frequent 6-mers.
    println!("\n6-mer quality report (average local confidence over all occurrences):");
    let mut cached_time = std::time::Duration::ZERO;
    let mut cached = 0usize;
    for mer in [&b"ACGTAC"[..], b"TTTTTT", b"GATTAC", b"CCGGCC", b"ACACAC", b"TGCATG"] {
        let start = Instant::now();
        let q = index.query(mer);
        let dt = start.elapsed();
        if q.source == QuerySource::HashTable {
            cached_time += dt;
            cached += 1;
        }
        println!(
            "  {}  occ = {:>6}  avg 6-base window quality = {}  [{}]",
            String::from_utf8_lossy(mer),
            q.occurrences,
            q.value.map_or("n/a".into(), |v| format!("{v:.3}")),
            if q.source == QuerySource::HashTable { "cached" } else { "computed" },
        );
    }
    if cached > 0 {
        println!("\n{cached} of the queries hit the hash table ({cached_time:?} total).");
    }

    // Expected-frequency check: a pattern's quality compared against the
    // genome-wide average confidence.
    let genome_avg: f64 = index.weights().iter().sum::<f64>() / n as f64;
    println!("genome-wide average confidence: {genome_avg:.3}");

    // Expected frequency (paper, Section I): with per-base correctness
    // probabilities as weights, a Product local window and Sum aggregate
    // give E[#correct occurrences of P].
    use usi::strings::LocalWindow;
    let ef_index = UsiBuilder::new()
        .with_k(n / 100)
        .with_local_window(LocalWindow::Product)
        .deterministic(11)
        .build(index.weighted_string().expect("built in memory").clone());
    println!("\nexpected vs observed frequency (sequencing-error adjusted):");
    for mer in [&b"ACGTAC"[..], b"CCGGCC", b"TGCATG"] {
        let q = ef_index.query(mer);
        println!(
            "  {}  observed {:>5}  expected correct reads {:>8.1}",
            String::from_utf8_lossy(mer),
            q.occurrences,
            q.value.unwrap_or(0.0)
        );
    }
}
