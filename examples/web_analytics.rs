//! Web analytics: navigation-path value in a server log (the paper's
//! Section-I web-analytics motivation: "finding the total time spent
//! visiting a sequence of web pages can improve website services, offer
//! navigation recommendations, and improve web page design").
//!
//! Each letter is a visited page; each position's utility is the dwell
//! time on that page. `U(path)` under different aggregates answers
//! different product questions:
//!
//! * `Sum`  — total engagement time the path has generated overall;
//! * `Avg`  — typical session time for users following the path;
//! * `Min`/`Max` — best/worst observed session time for the path.
//!
//! Run with: `cargo run --release --example web_analytics`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi::core::oracle::TopKOracle;
use usi::prelude::*;

/// Builds a synthetic click-stream: pages 'a'..='t', with a popular
/// navigation funnel "home → search → product → checkout" planted as
/// the sequence "hspc".
fn click_stream(n: usize, seed: u64) -> WeightedString {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = Vec::with_capacity(n + 4);
    let mut weights = Vec::with_capacity(n + 4);
    while text.len() < n {
        if rng.gen_bool(0.25) {
            // the funnel, with realistic dwell times per step
            text.extend_from_slice(b"hspc");
            weights.push(rng.gen_range(2.0..8.0)); // home
            weights.push(rng.gen_range(5.0..30.0)); // search
            weights.push(rng.gen_range(20.0..120.0)); // product page
            weights.push(rng.gen_range(30.0..90.0)); // checkout
        } else {
            text.push(b'a' + rng.gen_range(0..20u8));
            weights.push(rng.gen_range(1.0..60.0));
        }
    }
    text.truncate(n);
    weights.truncate(n);
    WeightedString::new(text, weights).expect("matched arrays")
}

fn main() {
    let ws = click_stream(300_000, 99);
    // Pick K from the trade-off curve: spend space until τ ≤ 64.
    let (oracle, _) = TopKOracle::from_text(ws.text());
    let point =
        oracle.tradeoff_curve().into_iter().find(|p| p.tau <= 64).expect("curve reaches tau = 1");
    println!(
        "trade-off pick: cache K = {} substrings → worst fallback τ = {}, {} lengths",
        point.k, point.tau, point.distinct_lengths
    );

    let funnel = b"hspc";
    for agg in [
        GlobalAggregator::Sum,
        GlobalAggregator::Avg,
        GlobalAggregator::Min,
        GlobalAggregator::Max,
        GlobalAggregator::Count,
    ] {
        let index = UsiBuilder::new()
            .with_k(point.k as usize)
            .with_aggregator(agg)
            .deterministic(101)
            .build(ws.clone());
        let q = index.query(funnel);
        println!(
            "{:>5}(home→search→product→checkout) = {:>12.1}   [{} occurrences, {:?}]",
            agg.name(),
            q.value.unwrap_or(0.0),
            q.occurrences,
            q.source,
        );
    }

    // Compare the funnel against a random 4-page path.
    let index = UsiBuilder::new()
        .with_k(point.k as usize)
        .with_aggregator(GlobalAggregator::Avg)
        .deterministic(101)
        .build(ws.clone());
    let random_path = &ws.text()[12_345..12_349];
    let funnel_avg = index.query(funnel).value.unwrap_or(0.0);
    let other_avg = index.query(random_path).value.unwrap_or(0.0);
    println!(
        "\navg dwell: funnel {funnel_avg:.1}s vs random path {other_avg:.1}s — \
         the funnel keeps users {}x longer",
        (funnel_avg / other_avg.max(1e-9)).round()
    );
}
