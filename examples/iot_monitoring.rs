//! IoT link-quality monitoring with live appends (Section X dynamics).
//!
//! A sensor network streams beacon identifiers, each with an RSSI-derived
//! link-quality utility. The operator queries the aggregate quality of
//! recurring beacon sequences while the stream keeps growing — the
//! dynamic-USI scenario. New readings are appended through
//! [`DynamicUsi`], which folds them into the static index in epochs.
//!
//! Run with: `cargo run --release --example iot_monitoring`

use usi::datasets::Dataset;
use usi::prelude::*;

fn main() {
    // Historical window: 200k readings.
    let history = Dataset::Iot.generate(200_000, 13);
    let n0 = history.len();
    let probe = history.text()[1_000..1_016].to_vec(); // a recurring sweep fragment

    let mut index = DynamicUsi::new(
        UsiBuilder::new().with_k(n0 / 100).deterministic(17),
        history,
        50_000, // rebuild epoch: fold the tail in every 50k readings
    );
    let q0 = index.query(&probe);
    println!(
        "historical window: sequence occurs {} times, total link quality {:.1}",
        q0.occurrences,
        q0.value.unwrap_or(0.0)
    );

    // Live stream: 120k new readings arrive (three rebuild epochs), and
    // the recurring sweep keeps appearing.
    let live = Dataset::Iot.generate(120_000, 14);
    for (i, (&b, &w)) in live.text().iter().zip(live.weights()).enumerate() {
        index.push(b, w);
        if (i + 1) % 40_000 == 0 {
            let q = index.query(&probe);
            println!(
                "after {:>6} live readings: occurrences {}, utility {:.1}, \
                 tail {} (rebuilds so far: {})",
                i + 1,
                q.occurrences,
                q.value.unwrap_or(0.0),
                index.tail_len(),
                index.rebuilds()
            );
        }
    }

    let q1 = index.query(&probe);
    assert!(q1.occurrences >= q0.occurrences);
    println!(
        "\nfinal: {} readings indexed, {} epoch rebuilds, sequence utility {:.1}",
        index.len(),
        index.rebuilds(),
        q1.value.unwrap_or(0.0)
    );
}
