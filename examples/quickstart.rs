//! Quickstart: index a weighted string and query global utilities.
//!
//! Reproduces Example 1 of the paper, then shows the two query paths
//! (hash-table hit vs text-index fallback) and the other aggregates.
//!
//! Run with: `cargo run --release --example quickstart`

use usi::prelude::*;

fn main() {
    // The paper's Example 1: S with per-position utilities w.
    let text = b"ATACCCCGATAATACCCCAG".to_vec();
    let weights = vec![
        0.9, 1.0, 3.0, 2.0, 0.7, 1.0, 1.0, 0.6, 0.5, 0.5, 0.5, 0.8, 1.0, 1.0, 1.0, 0.9, 1.0, 1.0,
        0.8, 1.0,
    ];
    let ws = WeightedString::new(text, weights).expect("matched lengths");

    // Build USI_TOP-K: the top-8 frequent substrings get their global
    // utilities precomputed into the fingerprint-keyed hash table.
    let index = UsiBuilder::new().with_k(8).deterministic(42).build(ws);

    // U(TACCCC) = (1+3+2+0.7+1+1) + (1+1+1+0.9+1+1) = 8.7 + 5.9 = 14.6
    let q = index.query(b"TACCCC");
    println!(
        "U(TACCCC) = {:.1}  ({} occurrences, answered via {:?})",
        q.value.unwrap(),
        q.occurrences,
        q.source
    );
    assert!((q.value.unwrap() - 14.6).abs() < 1e-9);

    // Frequent patterns are served from the hash table in O(m)…
    let hot = index.query(b"A");
    println!(
        "U(A)      = {:.1}  ({} occurrences, answered via {:?})",
        hot.value.unwrap(),
        hot.occurrences,
        hot.source
    );
    assert_eq!(hot.source, QuerySource::HashTable);

    // …while rare ones fall back to the suffix array + PSW.
    let rare = index.query(b"ATACCCCGATAATACCCCAG");
    println!(
        "U(S)      = {:.1}  ({} occurrence, answered via {:?})",
        rare.value.unwrap(),
        rare.occurrences,
        rare.source
    );
    assert_eq!(rare.source, QuerySource::TextIndex);

    // Other members of the utility class U: min / max / avg / count of
    // the local (windowed-sum) utilities.
    for agg in [
        GlobalAggregator::Min,
        GlobalAggregator::Max,
        GlobalAggregator::Avg,
        GlobalAggregator::Count,
    ] {
        let idx = UsiBuilder::new()
            .with_k(8)
            .with_aggregator(agg)
            .deterministic(42)
            .build(index.weighted_string().expect("built in memory").clone());
        let q = idx.query(b"TACCCC");
        println!("{}(TACCCC) = {:?}", agg.name(), q.value);
    }

    // Absent patterns: sum over zero occurrences is 0.
    let absent = index.query(b"GGGG");
    assert_eq!(absent.occurrences, 0);
    assert_eq!(absent.value, Some(0.0));
    println!("U(GGGG)   = {:.1}  (absent pattern)", absent.value.unwrap());
}
