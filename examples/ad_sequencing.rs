//! Ad sequencing (the paper's Section II case study).
//!
//! An advertising company's history is a string of ad categories where
//! every position carries a click-through rate (CTR). Marketers check
//! the effectiveness of candidate ad sequences by querying their global
//! utility; the company mines the most *useful* sequences and contrasts
//! them with the merely most *frequent* ones (Table I).
//!
//! Run with: `cargo run --release --example ad_sequencing`

use usi::core::oracle::TopKOracle;
use usi::datasets::Dataset;
use usi::prelude::*;
use usi::strings::text::display_bytes;

fn main() {
    // ADV-like corpus: 200k ad-category letters with CTR utilities.
    let ws = Dataset::Adv.generate(200_000, 3);
    let n = ws.len();
    let index = UsiBuilder::new().with_k(n / 36).deterministic(5).build(ws.clone());

    // A marketer checks two candidate campaigns of their own.
    println!("marketer queries:");
    for campaign in [&ws.text()[100..105].to_vec(), &b"nnnnn".to_vec()] {
        let q = index.query(campaign);
        println!(
            "  sequence {:?}: shown {} times, total CTR utility {:.1}",
            display_bytes(campaign),
            q.occurrences,
            q.value.unwrap_or(0.0)
        );
    }

    // The company mines: every substring of length >= 3 is a candidate;
    // rank by global utility and contrast with the frequency ranking.
    let (oracle, sa) = TopKOracle::from_text(ws.text());
    let mut scored: Vec<(u32, u32, u64, f64)> = Vec::new(); // (pos, len, freq, utility)
    'outer: for e in oracle.entries() {
        let lo = (e.parent_depth + 1).max(3);
        for len in lo..=e.depth.min(200) {
            if scored.len() >= 150_000 {
                break 'outer;
            }
            let pos = sa[e.lb as usize];
            let pat = &ws.text()[pos as usize..pos as usize + len as usize];
            let q = index.query(pat);
            scored.push((pos, len, q.occurrences, q.value.unwrap_or(0.0)));
        }
    }

    let show = |items: &[(u32, u32, u64, f64)]| {
        for (rank, &(pos, len, freq, utility)) in items.iter().take(4).enumerate() {
            let pat = &ws.text()[pos as usize..(pos + len) as usize];
            println!(
                "  {}. {:<12} freq {:>6}  utility {:>12.1}",
                rank + 1,
                display_bytes(&pat[..pat.len().min(12)]),
                freq,
                utility
            );
        }
    };

    let mut by_utility = scored.clone();
    by_utility.sort_unstable_by(|a, b| b.3.total_cmp(&a.3));
    println!("\ntop ad sequences by GLOBAL UTILITY (Table Ia):");
    show(&by_utility);

    let mut by_freq = scored.clone();
    by_freq.sort_unstable_by_key(|x| std::cmp::Reverse(x.2));
    println!("\ntop ad sequences by FREQUENCY (Table Ib):");
    show(&by_freq);

    // The paper's observation: the most frequent sequences are usually
    // NOT the most useful ones.
    let top_frequent_utility_rank = 1 + by_utility
        .iter()
        .position(|x| (x.0, x.1) == (by_freq[0].0, by_freq[0].1))
        .unwrap_or(usize::MAX - 1);
    println!(
        "\nthe most frequent sequence only ranks #{top_frequent_utility_rank} by utility \
         (paper: #21 on the real ADV data)"
    );
}
